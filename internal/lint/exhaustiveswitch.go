package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ExhaustiveSwitchConfig tunes which enum types are enforced.
type ExhaustiveSwitchConfig struct {
	// EnumPathPrefixes restricts enforcement to enum types declared in
	// packages whose import path starts with one of these prefixes.
	// Empty enforces every non-stdlib-looking enum the checker can see;
	// in this repository the suite passes "mpcp" so that adding a trace
	// event kind or protocol constant breaks the build of every switch
	// that silently ignored it.
	EnumPathPrefixes []string
}

// NewExhaustiveSwitch builds the exhaustiveswitch analyzer.
//
// The contract: a `switch` over one of the repository's enums — the
// trace event kinds, protocol/queue-order/strategy constants, job
// states — must either cover every declared constant of the type or
// carry an explicit `default:` clause acknowledging that the remaining
// kinds are ignored on purpose. Without this, adding an event kind
// compiles cleanly while the observability and conformance replay
// paths silently drop it.
//
// An enum is any defined type with an integer underlying type that has
// at least two package-level constants declared of exactly that type.
// Coverage is judged by constant value, so aliases of the same value
// count as covering it.
func NewExhaustiveSwitch(cfg ExhaustiveSwitchConfig) *Analyzer {
	a := &Analyzer{
		Name: "exhaustiveswitch",
		Doc:  "switches over repository enums must cover every constant or declare an explicit default",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sw, ok := n.(*ast.SwitchStmt)
				if !ok || sw.Tag == nil {
					return true
				}
				checkExhaustive(pass, sw, cfg)
				return true
			})
		}
	}
	return a
}

func checkExhaustive(pass *Pass, sw *ast.SwitchStmt, cfg ExhaustiveSwitchConfig) {
	info := pass.Pkg.Info
	tv, ok := info.Types[sw.Tag]
	if !ok || tv.Type == nil {
		return
	}
	named, ok := types.Unalias(tv.Type).(*types.Named)
	if !ok {
		return
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return
	}
	declPkg := named.Obj().Pkg()
	if declPkg == nil || !pathMatchesAny(declPkg.Path(), cfg.EnumPathPrefixes) {
		return
	}

	members := enumMembers(declPkg, named)
	if len(members) < 2 {
		return
	}

	covered := map[string]bool{} // keyed by exact constant value
	for _, clause := range sw.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // explicit default: the author acknowledged the rest
		}
		for _, e := range cc.List {
			if etv, ok := info.Types[e]; ok && etv.Value != nil {
				covered[etv.Value.ExactString()] = true
			}
		}
	}

	var missing []string
	for _, m := range members {
		if !covered[m.val.ExactString()] {
			missing = append(missing, m.name)
		}
	}
	if len(missing) == 0 {
		return
	}
	pass.Reportf(sw.Pos(), "switch over %s is not exhaustive: missing %s (cover them or add an explicit default acknowledging they are ignored)",
		named.Obj().Name(), strings.Join(missing, ", "))
}

type enumMember struct {
	name string
	val  constant.Value
}

// enumMembers returns the package-level constants declared with exactly
// the given type, sorted by value then name so reports are stable.
func enumMembers(pkg *types.Package, named *types.Named) []enumMember {
	var out []enumMember
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		out = append(out, enumMember{name: name, val: c.Val()})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if constant.Compare(a.val, token.LSS, b.val) {
			return true
		}
		if constant.Compare(b.val, token.LSS, a.val) {
			return false
		}
		return a.name < b.name
	})
	return out
}

func pathMatchesAny(path string, prefixes []string) bool {
	if len(prefixes) == 0 {
		return !isLikelyStdlib(path)
	}
	for _, p := range prefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// isLikelyStdlib distinguishes standard-library import paths (no dot in
// the first element, e.g. "go/token") from module paths.
func isLikelyStdlib(path string) bool {
	first, _, _ := strings.Cut(path, "/")
	return !strings.Contains(first, ".")
}
