package lint_test

import (
	"path/filepath"
	"testing"

	"mpcp/internal/lint"
)

// loadFixture loads one testdata package, failing the test on loader or
// type errors. Shared by tests that need raw packages rather than the
// linttest want-comment harness.
func loadFixture(t *testing.T, dir string) []*lint.Package {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	root, err := lint.ModuleRoot(abs)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := filepath.Rel(root, abs)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.Load(root, "./"+filepath.ToSlash(rel))
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			t.Fatalf("fixture %s does not type-check: %v", p.ImportPath, terr)
		}
	}
	return pkgs
}

// TestRepoClean is the self-check the CI gate relies on: the default
// suite over the whole module must report nothing. Deliberate
// violations live only under testdata, which `./...` does not expand
// into; everything else is either fixed or carries a justified
// //rtlint:allow.
func TestRepoClean(t *testing.T) {
	root, err := lint.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.RunSuite(root, lint.DefaultSuite(), "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("rtvet finding on the repository itself: %s", d)
	}
}

// TestDefaultSuiteShape pins the suite's composition so a dropped
// analyzer cannot silently pass CI.
func TestDefaultSuiteShape(t *testing.T) {
	want := map[string]bool{
		"determinism":      true,
		"lockdiscipline":   true,
		"allocbudget":      true,
		"protocontract":    true,
		"lockorder":        true,
		"exhaustiveswitch": true,
		"floatcompare":     true,
		"jsonstable":       true,
	}
	suite := lint.DefaultSuite()
	if len(suite) != len(want) {
		t.Fatalf("DefaultSuite has %d analyzers, want %d", len(suite), len(want))
	}
	for _, sc := range suite {
		if !want[sc.Analyzer.Name] {
			t.Errorf("unexpected analyzer %q in DefaultSuite", sc.Analyzer.Name)
		}
		delete(want, sc.Analyzer.Name)
	}
	for name := range want {
		t.Errorf("DefaultSuite is missing analyzer %q", name)
	}
}
