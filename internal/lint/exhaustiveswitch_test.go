package lint_test

import (
	"testing"

	"mpcp/internal/lint"
	"mpcp/internal/lint/linttest"
)

func TestExhaustiveSwitch(t *testing.T) {
	linttest.Run(t, "testdata/src/exhaustiveswitch",
		lint.NewExhaustiveSwitch(lint.ExhaustiveSwitchConfig{EnumPathPrefixes: []string{"mpcp"}}))
}

// TestExhaustiveSwitchForeignEnums verifies scoping by prefix: with the
// fixture's module excluded from EnumPathPrefixes, its enums are
// foreign and nothing reports.
func TestExhaustiveSwitchForeignEnums(t *testing.T) {
	a := lint.NewExhaustiveSwitch(lint.ExhaustiveSwitchConfig{EnumPathPrefixes: []string{"some/other/module"}})
	pkgs := loadFixture(t, "testdata/src/exhaustiveswitch")
	if diags := lint.Run(pkgs, a); len(diags) != 0 {
		t.Errorf("expected no findings for out-of-scope enums, got %d: %v", len(diags), diags)
	}
}
