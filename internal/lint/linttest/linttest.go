// Package linttest runs internal/lint analyzers against fixture
// packages and checks their findings against `// want "regexp"`
// comments, the way golang.org/x/tools/go/analysis/analysistest does.
//
// A fixture is an ordinary compilable package under
// internal/lint/testdata/src/ — the go tool skips testdata directories
// when expanding `...`, so the deliberate violations never reach the
// build, vet or staticcheck gates, while explicit directory arguments
// still load (and compile) them for these tests.
//
// Every line that should produce a finding carries a trailing comment:
//
//	return time.Now() // want `time\.Now`
//
// with one double-quoted or backquoted regular expression per expected
// finding. Each expectation must be matched by exactly one finding on
// its line and every finding must be claimed by an expectation, so a
// fixture also proves findings are reported exactly once. Suppressed
// lines (//rtlint:allow) carry no expectation: the suppression filter
// runs before comparison, which is how suppression handling itself is
// tested.
package linttest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"mpcp/internal/lint"
)

// expectation is one `// want` entry.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads the package rooted at pkgDir (relative to the caller's
// working directory or absolute), applies the analyzers, and fails t
// with a precise diff of missing and unexpected findings.
func Run(t *testing.T, pkgDir string, analyzers ...*lint.Analyzer) {
	t.Helper()
	abs, err := filepath.Abs(pkgDir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	root, err := lint.ModuleRoot(abs)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	rel, err := filepath.Rel(root, abs)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	pkgs, err := lint.Load(root, "./"+filepath.ToSlash(rel))
	if err != nil {
		t.Fatalf("linttest: load %s: %v", pkgDir, err)
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			t.Fatalf("linttest: fixture %s does not type-check: %v", p.ImportPath, terr)
		}
	}

	var wants []*expectation
	for _, p := range pkgs {
		w, err := parseWants(p)
		if err != nil {
			t.Fatalf("linttest: %v", err)
		}
		wants = append(wants, w...)
	}

	diags := lint.Run(pkgs, analyzers...)
	for _, d := range diags {
		claimed := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

var wantRE = regexp.MustCompile("//\\s*want\\s+(.*)$")

// parseWants extracts expectations from the package's comments.
func parseWants(p *lint.Package) ([]*expectation, error) {
	var out []*expectation
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				patterns, err := splitPatterns(m[1])
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %v", pos.Filename, pos.Line, err)
				}
				for _, pat := range patterns {
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: pat})
				}
			}
		}
	}
	return out, nil
}

// splitPatterns parses a sequence of double-quoted or backquoted
// strings.
func splitPatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated want string in %q", s)
			}
			unq, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, fmt.Errorf("bad want string %q: %v", s[:end+1], err)
			}
			out = append(out, unq)
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated want pattern in %q", s)
			}
			out = append(out, s[1:end+1])
			s = strings.TrimSpace(s[end+2:])
		default:
			return nil, fmt.Errorf("want patterns must be quoted, got %q", s)
		}
	}
	return out, nil
}
