package lint_test

import (
	"testing"

	"mpcp/internal/lint"
	"mpcp/internal/lint/linttest"
)

func TestLockDiscipline(t *testing.T) {
	linttest.Run(t, "testdata/src/lockdiscipline", lint.LockDiscipline)
}
