package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"reflect"
	"strings"
)

// JSONStable flags json.Marshal / json.MarshalIndent /
// (*json.Encoder).Encode calls whose argument type reaches a bare map
// without an intervening MarshalJSON. The JSONL artifacts this
// repository emits — campaign checkpoints, conformance repros, trace
// streams, metrics snapshots — are contractually byte-identical across
// runs and content-addressed (repro filenames hash the bytes). A bare
// map in a snapshot schema is banned: its key set is schema-unstable
// (fields appear and vanish per run), non-string keys round-trip
// through type-specific formatting, and any future hash or gob path
// inherits raw iteration order. Types that need map-shaped data
// implement MarshalJSON over sorted keys or export a sorted slice, as
// obs.Snapshot does.
var JSONStable = &Analyzer{
	Name: "jsonstable",
	Doc:  "types serialized to JSONL snapshots/repros must not marshal bare maps",
}

func init() {
	JSONStable.Run = func(pass *Pass) {
		info := pass.Pkg.Info
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(info, call)
				if fn == nil || !isJSONMarshalCall(fn) || len(call.Args) == 0 {
					return true
				}
				argType := info.Types[call.Args[0]].Type
				if argType == nil {
					return true
				}
				root := typeLabel(argType)
				if path, found := bareMapPath(argType, root, map[*types.Named]bool{}); found {
					pass.Reportf(call.Pos(), "%s.%s serializes %s which reaches bare map %s: snapshot/repro schemas must use sorted slices or a custom MarshalJSON", fn.Pkg().Name(), fn.Name(), root, path)
				}
				return true
			})
		}
	}
}

// isJSONMarshalCall reports whether fn is encoding/json.Marshal,
// MarshalIndent, or (*Encoder).Encode.
func isJSONMarshalCall(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "encoding/json" {
		return false
	}
	switch fn.Name() {
	case "Marshal", "MarshalIndent":
		return true
	case "Encode":
		sig := fn.Type().(*types.Signature)
		return sig.Recv() != nil
	}
	return false
}

// bareMapPath walks t looking for a map type not shielded by a custom
// MarshalJSON, returning a human-readable field path to the first one
// found. Interfaces stop the walk (the dynamic type is unknowable
// statically); unexported fields are skipped because encoding/json
// does.
func bareMapPath(t types.Type, path string, seen map[*types.Named]bool) (string, bool) {
	t = types.Unalias(t)
	if named, ok := t.(*types.Named); ok {
		if seen[named] {
			return "", false
		}
		seen[named] = true
		if implementsJSONMarshaler(named) {
			return "", false
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Map:
		return fmt.Sprintf("%s (%s)", path, types.TypeString(u, shortQualifier)), true
	case *types.Pointer:
		return bareMapPath(u.Elem(), path, seen)
	case *types.Slice:
		return bareMapPath(u.Elem(), path+"[]", seen)
	case *types.Array:
		return bareMapPath(u.Elem(), path+"[]", seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if !f.Exported() {
				continue
			}
			if tag := parseJSONTagName(u.Tag(i)); tag == "-" {
				continue
			}
			if p, found := bareMapPath(f.Type(), path+"."+f.Name(), seen); found {
				return p, true
			}
		}
	}
	return "", false
}

// implementsJSONMarshaler reports whether T or *T declares MarshalJSON.
// The signature is not verified strictly: a MarshalJSON method with the
// wrong shape fails to compile against the json.Marshaler uses the
// repository already has.
func implementsJSONMarshaler(t types.Type) bool {
	for _, recv := range []types.Type{t, types.NewPointer(t)} {
		obj, _, _ := types.LookupFieldOrMethod(recv, true, nil, "MarshalJSON")
		if _, ok := obj.(*types.Func); ok {
			return true
		}
	}
	return false
}

// parseJSONTagName extracts the name part of a `json:"..."` tag.
func parseJSONTagName(tag string) string {
	name, _, _ := strings.Cut(reflect.StructTag(tag).Get("json"), ",")
	return name
}

// typeLabel renders a type compactly for diagnostics.
func typeLabel(t types.Type) string {
	return types.TypeString(t, shortQualifier)
}

// shortQualifier prints package names, not full import paths.
func shortQualifier(p *types.Package) string { return p.Name() }
