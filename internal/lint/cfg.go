package lint

import (
	"go/ast"
)

// This file is the shared control-flow layer under the branch-sensitive
// analyzers (lockdiscipline, allocbudget, protocontract, lockorder). A
// CFG is built per function body from syntax alone — no type
// information — so it can also be unit-tested on parsed snippets. The
// graph is intraprocedural; interprocedural analyzers combine per-
// function CFGs with call summaries.
//
// Node granularity is deliberately shallow: a Block's Nodes slice holds
// simple statements (assignments, expression statements, sends, defers,
// returns, ...) and the bare condition/tag expressions of the control
// statements that end the block. Compound statements themselves (if,
// for, switch) never appear as nodes — their components are split into
// blocks — with one exception: a *ast.SelectStmt appears as a marker
// node so analyzers can see "a select happens here", and its clause
// bodies are split into successor blocks. Transfer functions must
// therefore treat SelectStmt nodes shallowly and never ast.Inspect
// through them.

// A Block is a maximal straight-line run of nodes with a single entry.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
	// Live reports whether the block is reachable from Entry. Dead
	// blocks (code after return/break/panic) keep their edges but never
	// propagate dataflow facts.
	Live bool
}

// A CFG is the control-flow graph of one function body.
type CFG struct {
	Entry *Block
	Exit  *Block
	// Blocks lists every block in creation order; Block.Index indexes
	// into it.
	Blocks []*Block
	// FallsOff is the block that reaches Exit by falling off the end of
	// the body. It always exists; when every path returns it is simply
	// not Live.
	FallsOff *Block
	// Defers collects defer statements in source order. Deferred calls
	// run on every exit edge (including panics), so exit-path analyses
	// fold their effects into each exit point.
	Defers []*ast.DeferStmt
}

// NewCFG builds the control-flow graph of body.
//
// panic(...) calls are treated as terminators with an edge to Exit but
// are not recorded as fall-off exits, so exit-path analyses can
// distinguish a crash from a return. The classification is syntactic
// (an identifier literally named panic); shadowing the builtin would be
// rejected elsewhere long before it confused an analyzer.
func NewCFG(body *ast.BlockStmt) *CFG {
	c := &CFG{}
	b := &cfgBuilder{cfg: c, labels: map[string]*Block{}}
	c.Entry = b.newBlock()
	c.Exit = b.newBlock()
	b.cur = c.Entry
	b.stmts(body.List)
	c.FallsOff = b.cur
	addEdge(b.cur, c.Exit)

	var mark func(*Block)
	mark = func(bl *Block) {
		if bl.Live {
			return
		}
		bl.Live = true
		for _, s := range bl.Succs {
			mark(s)
		}
	}
	mark(c.Entry)
	return c
}

type cfgFrame struct {
	label  string
	target *Block
}

type cfgBuilder struct {
	cfg *CFG
	cur *Block
	// brk and cont are the enclosing break/continue target stacks; fall
	// is the fallthrough target stack (next case clause, nil for the
	// last one).
	brk  []cfgFrame
	cont []cfgFrame
	fall []*Block
	// labels maps label names to their blocks, created on first use so
	// forward gotos resolve without a second pass.
	labels map[string]*Block
	// pendingLabel is the label of the immediately-enclosing labeled
	// statement, consumed by the loop/switch/select it labels.
	pendingLabel string
}

func (b *cfgBuilder) newBlock() *Block {
	bl := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, bl)
	return bl
}

func addEdge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

func (b *cfgBuilder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// terminate ends the current block (after a return, branch or panic)
// and continues building into a fresh, unreachable one so trailing dead
// code still gets blocks.
func (b *cfgBuilder) terminate() {
	b.cur = b.newBlock()
}

func (b *cfgBuilder) labelBlock(name string) *Block {
	if bl, ok := b.labels[name]; ok {
		return bl
	}
	bl := b.newBlock()
	b.labels[name] = bl
	return bl
}

func (b *cfgBuilder) findFrame(frames []cfgFrame, label *ast.Ident) *Block {
	if len(frames) == 0 {
		return nil
	}
	if label == nil {
		return frames[len(frames)-1].target
	}
	for i := len(frames) - 1; i >= 0; i-- {
		if frames[i].label == label.Name {
			return frames[i].target
		}
	}
	return nil
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	// A pending label applies only to the directly-labeled statement.
	lbl := b.pendingLabel
	b.pendingLabel = ""

	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)

	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		addEdge(b.cur, lb)
		b.cur = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		then := b.newBlock()
		addEdge(cond, then)
		b.cur = then
		b.stmt(s.Body)
		thenEnd := b.cur
		elseEnd := cond
		if s.Else != nil {
			els := b.newBlock()
			addEdge(cond, els)
			b.cur = els
			b.stmt(s.Else)
			elseEnd = b.cur
		}
		join := b.newBlock()
		addEdge(thenEnd, join)
		addEdge(elseEnd, join)
		b.cur = join

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		addEdge(b.cur, head)
		exit := b.newBlock()
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
			addEdge(head, exit)
		}
		post := b.newBlock()
		body := b.newBlock()
		addEdge(head, body)
		b.brk = append(b.brk, cfgFrame{lbl, exit})
		b.cont = append(b.cont, cfgFrame{lbl, post})
		b.cur = body
		b.stmts(s.Body.List)
		addEdge(b.cur, post)
		b.brk = b.brk[:len(b.brk)-1]
		b.cont = b.cont[:len(b.cont)-1]
		b.cur = post
		if s.Post != nil {
			b.stmt(s.Post)
		}
		addEdge(b.cur, head)
		b.cur = exit

	case *ast.RangeStmt:
		b.add(s.X)
		head := b.newBlock()
		addEdge(b.cur, head)
		exit := b.newBlock()
		addEdge(head, exit)
		body := b.newBlock()
		addEdge(head, body)
		b.brk = append(b.brk, cfgFrame{lbl, exit})
		b.cont = append(b.cont, cfgFrame{lbl, head})
		b.cur = body
		b.stmts(s.Body.List)
		addEdge(b.cur, head)
		b.brk = b.brk[:len(b.brk)-1]
		b.cont = b.cont[:len(b.cont)-1]
		b.cur = exit

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(lbl, s.Body.List)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(lbl, s.Body.List)

	case *ast.SelectStmt:
		// The SelectStmt node itself is the shallow marker; the comm
		// statements are part of the select's atomic rendezvous and are
		// deliberately not re-added as clause nodes.
		b.add(s)
		sel := b.cur
		exit := b.newBlock()
		b.brk = append(b.brk, cfgFrame{lbl, exit})
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock()
			addEdge(sel, blk)
			b.cur = blk
			b.stmts(cc.Body)
			addEdge(b.cur, exit)
		}
		b.brk = b.brk[:len(b.brk)-1]
		b.cur = exit

	case *ast.ReturnStmt:
		b.add(s)
		addEdge(b.cur, b.cfg.Exit)
		b.terminate()

	case *ast.BranchStmt:
		switch s.Tok.String() {
		case "break":
			if t := b.findFrame(b.brk, s.Label); t != nil {
				addEdge(b.cur, t)
			}
		case "continue":
			if t := b.findFrame(b.cont, s.Label); t != nil {
				addEdge(b.cur, t)
			}
		case "goto":
			addEdge(b.cur, b.labelBlock(s.Label.Name))
		case "fallthrough":
			if n := len(b.fall); n > 0 && b.fall[n-1] != nil {
				addEdge(b.cur, b.fall[n-1])
			}
		}
		b.terminate()

	case *ast.DeferStmt:
		b.add(s)
		b.cfg.Defers = append(b.cfg.Defers, s)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				addEdge(b.cur, b.cfg.Exit)
				b.terminate()
			}
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// Assignments, declarations, sends, inc/dec, go statements:
		// straight-line nodes.
		b.add(s)
	}
}

// switchBody builds the clause blocks shared by expression and type
// switches. The tag block (b.cur) fans out to every clause; a missing
// default adds the skip edge to the exit.
func (b *cfgBuilder) switchBody(label string, clauses []ast.Stmt) {
	tag := b.cur
	exit := b.newBlock()
	b.brk = append(b.brk, cfgFrame{label, exit})
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		blocks[i] = b.newBlock()
		addEdge(tag, blocks[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		addEdge(tag, exit)
	}
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		for _, e := range cc.List {
			blocks[i].Nodes = append(blocks[i].Nodes, e)
		}
		var next *Block
		if i+1 < len(clauses) {
			next = blocks[i+1]
		}
		b.fall = append(b.fall, next)
		b.cur = blocks[i]
		b.stmts(cc.Body)
		addEdge(b.cur, exit)
		b.fall = b.fall[:len(b.fall)-1]
	}
	b.brk = b.brk[:len(b.brk)-1]
	b.cur = exit
}

// A Dataflow runs a forward may/must analysis over a CFG to a fixpoint.
// F is the fact type; Bottom is the "unreachable" fact every non-entry
// block starts from, Join merges the fact flowing in over one edge into
// a block's current in-fact, and Transfer computes a block's out-fact
// from its in-fact. Transfer must not mutate its input (clone first)
// and the fact lattice must be finite for termination, which holds for
// the set- and map-shaped facts the analyzers here use.
type Dataflow[F any] struct {
	CFG      *CFG
	Entry    F
	Bottom   func() F
	Join     func(dst, src F) F
	Equal    func(a, b F) bool
	Transfer func(blk *Block, in F) F
}

// Run returns the fixpoint in-fact for every block, indexed by
// Block.Index. Dead blocks keep their Bottom fact: they are never
// enqueued, so their outgoing edges never propagate.
func (d Dataflow[F]) Run() []F {
	in := make([]F, len(d.CFG.Blocks))
	for i := range in {
		in[i] = d.Bottom()
	}
	in[d.CFG.Entry.Index] = d.Entry
	queued := make([]bool, len(d.CFG.Blocks))
	work := []*Block{d.CFG.Entry}
	queued[d.CFG.Entry.Index] = true
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk.Index] = false
		out := d.Transfer(blk, in[blk.Index])
		for _, s := range blk.Succs {
			merged := d.Join(in[s.Index], out)
			if d.Equal(in[s.Index], merged) {
				continue
			}
			in[s.Index] = merged
			if !queued[s.Index] {
				queued[s.Index] = true
				work = append(work, s)
			}
		}
	}
	return in
}
