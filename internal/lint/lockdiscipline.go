package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockDiscipline enforces the substrate's locking contract: a
// sync.Mutex / sync.RWMutex acquired in a function must be released on
// every return path (an early return holding the lock deadlocks the
// next waiter), and no goroutine may block — channel send or receive,
// select, time.Sleep, or a Wait call — while holding one (the paper's
// rule that semaphore-queue operations are short and indivisible;
// blocking under the queue lock is exactly the drift the RTEMS port
// paper documents).
//
// The check is a conservative syntactic walk: branches are analyzed
// with copies of the held-lock set, a release inside one branch does
// not release for the code after the branch, and function literals are
// analyzed as independent functions. When the analyzer cannot prove a
// path safe it reports; intentional patterns carry an
// //rtlint:allow lockdiscipline comment with justification.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "requires unlock on every return path and forbids blocking while holding a sync mutex",
}

func init() {
	LockDiscipline.Run = func(pass *Pass) {
		inspectFuncs(pass.Pkg, func(decl *ast.FuncDecl) {
			runLockDiscipline(pass, decl.Body)
			// Function literals are separate execution contexts (they
			// may run on another goroutine or after the caller
			// returned), so each gets a fresh held-set.
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					runLockDiscipline(pass, lit.Body)
				}
				return true
			})
		})
	}
}

// lockState tracks which mutexes are held at a program point. Keys are
// the printed receiver expression plus the read/write flavor, e.g.
// "r.mu" or "r.mu(R)".
type lockState struct {
	held     map[string]token.Pos // where the lock was taken
	deferred map[string]bool      // released by a defer on function exit
}

func (s *lockState) clone() *lockState {
	c := &lockState{held: map[string]token.Pos{}, deferred: map[string]bool{}}
	for k, v := range s.held {
		c.held[k] = v
	}
	for k := range s.deferred {
		c.deferred[k] = true
	}
	return c
}

func runLockDiscipline(pass *Pass, body *ast.BlockStmt) {
	st := &lockState{held: map[string]token.Pos{}, deferred: map[string]bool{}}
	walkLockStmts(pass, body.List, st)
	// A lock still held (and not defer-released) when the function falls
	// off the end is as much a leak as an early return.
	for _, key := range st.heldKeys() {
		if !st.deferred[key] {
			pass.Reportf(st.held[key], "%s is locked here but not released on the fall-through path; unlock before returning or use defer", key)
		}
	}
}

// heldKeys returns the held lock keys in sorted order so reports are
// deterministic.
func (s *lockState) heldKeys() []string {
	keys := make([]string, 0, len(s.held))
	for k := range s.held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func walkLockStmts(pass *Pass, stmts []ast.Stmt, st *lockState) {
	for _, s := range stmts {
		walkLockStmt(pass, s, st)
	}
}

func walkLockStmt(pass *Pass, s ast.Stmt, st *lockState) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if key, op, pos := mutexOp(pass, s.X); op != "" {
			switch op {
			case "lock":
				st.held[key] = pos
			case "unlock":
				delete(st.held, key)
				delete(st.deferred, key)
			}
			return
		}
		reportBlockingExpr(pass, s.X, st)
	case *ast.DeferStmt:
		if key, op, _ := mutexOp(pass, s.Call); op == "unlock" {
			st.deferred[key] = true
			return
		}
	case *ast.SendStmt:
		reportBlocking(pass, s.Pos(), st, "channel send")
		reportBlockingExpr(pass, s.Value, st)
	case *ast.SelectStmt:
		reportBlocking(pass, s.Pos(), st, "select")
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				walkLockStmts(pass, cc.Body, st.clone())
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			reportBlockingExpr(pass, e, st)
		}
		for _, key := range st.heldKeys() {
			if !st.deferred[key] {
				pass.Reportf(s.Pos(), "return while holding %s (locked at %s) without an unlock on this path", key, pass.Pkg.Fset.Position(st.held[key]))
			}
		}
		// Nothing runs after a return on this path.
		st.held = map[string]token.Pos{}
	case *ast.IfStmt:
		if s.Init != nil {
			walkLockStmt(pass, s.Init, st)
		}
		reportBlockingExpr(pass, s.Cond, st)
		walkLockStmts(pass, s.Body.List, st.clone())
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			walkLockStmts(pass, e.List, st.clone())
		case *ast.IfStmt:
			walkLockStmt(pass, e, st.clone())
		}
	case *ast.ForStmt:
		if s.Init != nil {
			walkLockStmt(pass, s.Init, st)
		}
		walkLockStmts(pass, s.Body.List, st.clone())
	case *ast.RangeStmt:
		reportBlockingExpr(pass, s.X, st)
		walkLockStmts(pass, s.Body.List, st.clone())
	case *ast.SwitchStmt:
		if s.Init != nil {
			walkLockStmt(pass, s.Init, st)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				walkLockStmts(pass, cc.Body, st.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				walkLockStmts(pass, cc.Body, st.clone())
			}
		}
	case *ast.BlockStmt:
		walkLockStmts(pass, s.List, st)
	case *ast.LabeledStmt:
		walkLockStmt(pass, s.Stmt, st)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			reportBlockingExpr(pass, e, st)
		}
	case *ast.GoStmt:
		// The spawned goroutine has its own stack; nothing to track here
		// (its body is analyzed as a function literal).
	}
}

// mutexOp classifies e as a sync lock or unlock call and returns the
// receiver key. Only methods actually declared by the sync package
// count, so domain types with Lock/Unlock APIs (the simulator's
// semaphore operations) are not confused for mutexes.
func mutexOp(pass *Pass, e ast.Expr) (key, op string, pos token.Pos) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", "", token.NoPos
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", token.NoPos
	}
	fn, _ := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", token.NoPos
	}
	recv := types.ExprString(sel.X)
	switch fn.Name() {
	case "Lock":
		return recv, "lock", call.Pos()
	case "RLock":
		return recv + "(R)", "lock", call.Pos()
	case "Unlock":
		return recv, "unlock", call.Pos()
	case "RUnlock":
		return recv + "(R)", "unlock", call.Pos()
	}
	return "", "", token.NoPos
}

// reportBlockingExpr flags blocking operations buried in an expression:
// channel receives, time.Sleep, and Wait calls (sync.WaitGroup.Wait,
// sync.Cond.Wait, exec.Cmd.Wait — anything that parks the goroutine).
func reportBlockingExpr(pass *Pass, e ast.Expr, st *lockState) {
	if e == nil || len(st.held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate execution context
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				reportBlocking(pass, n.Pos(), st, "channel receive")
			}
		case *ast.CallExpr:
			if fn := calleeFunc(pass.Pkg.Info, n); fn != nil {
				if fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Sleep" {
					reportBlocking(pass, n.Pos(), st, "time.Sleep")
				} else if fn.Name() == "Wait" && fn.Type().(*types.Signature).Recv() != nil {
					reportBlocking(pass, n.Pos(), st, fn.FullName())
				}
			}
		}
		return true
	})
}

func reportBlocking(pass *Pass, pos token.Pos, st *lockState, what string) {
	if keys := st.heldKeys(); len(keys) > 0 {
		// One report per site is enough; name the first held lock.
		pass.Reportf(pos, "%s while holding %s: blocking under a mutex stalls every other waiter and can deadlock the wakeup path", what, keys[0])
	}
}
