package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockDiscipline enforces the substrate's locking contract: a
// sync.Mutex / sync.RWMutex acquired in a function must be released on
// every return path (an early return holding the lock deadlocks the
// next waiter), and no goroutine may block — channel send or receive,
// select, time.Sleep, or a Wait call — while holding one (the paper's
// rule that semaphore-queue operations are short and indivisible;
// blocking under the queue lock is exactly the drift the RTEMS port
// paper documents).
//
// The check runs a may-held dataflow over the shared CFG layer: the
// fact at a program point is the set of mutexes some path to that point
// acquired and did not release, so a lock taken in one branch is still
// reported when a later merge point can return without the unlock.
// Function literals are analyzed as independent functions. When the
// analyzer cannot prove a path safe it reports; intentional patterns
// carry an //rtlint:allow lockdiscipline comment with justification.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "requires unlock on every return path and forbids blocking while holding a sync mutex",
}

func init() {
	LockDiscipline.Run = func(pass *Pass) {
		inspectFuncs(pass.Pkg, func(decl *ast.FuncDecl) {
			runLockDiscipline(pass, decl.Body)
			// Function literals are separate execution contexts (they
			// may run on another goroutine or after the caller
			// returned), so each gets a fresh held-set.
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					runLockDiscipline(pass, lit.Body)
				}
				return true
			})
		})
	}
}

// lockFact is the dataflow fact: which mutexes may be held at a program
// point. Keys are the printed receiver expression plus the read/write
// flavor, e.g. "r.mu" or "r.mu(R)". A nil fact marks an unreachable
// point.
type lockFact struct {
	held     map[string]token.Pos // where the lock was taken (min over paths)
	deferred map[string]bool      // released by a defer on every path here
}

func newLockFact() *lockFact {
	return &lockFact{held: map[string]token.Pos{}, deferred: map[string]bool{}}
}

func (s *lockFact) clone() *lockFact {
	c := newLockFact()
	for k, v := range s.held {
		c.held[k] = v
	}
	for k := range s.deferred {
		c.deferred[k] = true
	}
	return c
}

// heldKeys returns the held lock keys in sorted order so reports are
// deterministic.
func (s *lockFact) heldKeys() []string {
	keys := make([]string, 0, len(s.held))
	for k := range s.held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func lockFactsEqual(a, b *lockFact) bool {
	if a == nil || b == nil {
		return a == b
	}
	if len(a.held) != len(b.held) || len(a.deferred) != len(b.deferred) {
		return false
	}
	for k, v := range a.held {
		if w, ok := b.held[k]; !ok || v != w {
			return false
		}
	}
	for k := range a.deferred {
		if !b.deferred[k] {
			return false
		}
	}
	return true
}

// joinLockFacts unions the may-held sets. A lock counts as
// defer-released only when every reaching path registered the defer;
// the earliest acquisition position wins so reports are stable.
func joinLockFacts(dst, src *lockFact) *lockFact {
	if src == nil {
		return dst
	}
	if dst == nil {
		return src.clone()
	}
	merged := newLockFact()
	for k, v := range dst.held {
		merged.held[k] = v
	}
	for k, v := range src.held {
		if cur, ok := merged.held[k]; !ok || v < cur {
			merged.held[k] = v
		}
	}
	for k := range dst.deferred {
		if src.deferred[k] {
			merged.deferred[k] = true
		}
	}
	return merged
}

func runLockDiscipline(pass *Pass, body *ast.BlockStmt) {
	cfg := NewCFG(body)
	df := Dataflow[*lockFact]{
		CFG:    cfg,
		Entry:  newLockFact(),
		Bottom: func() *lockFact { return nil },
		Join:   joinLockFacts,
		Equal:  lockFactsEqual,
		Transfer: func(blk *Block, in *lockFact) *lockFact {
			st := in.clone()
			for _, n := range blk.Nodes {
				applyLockNode(pass, n, st, false)
			}
			return st
		},
	}
	in := df.Run()

	// Reporting sweep: one pass per live block, replaying the transfer
	// with reporting enabled so each site is flagged exactly once.
	for _, blk := range cfg.Blocks {
		if !blk.Live || in[blk.Index] == nil {
			continue
		}
		st := in[blk.Index].clone()
		for _, n := range blk.Nodes {
			applyLockNode(pass, n, st, true)
		}
		if blk == cfg.FallsOff {
			// A lock still held (and not defer-released) when the
			// function falls off the end is as much a leak as an early
			// return.
			for _, key := range st.heldKeys() {
				if !st.deferred[key] {
					pass.Reportf(st.held[key], "%s is locked here but not released on the fall-through path; unlock before returning or use defer", key)
				}
			}
		}
	}
}

// applyLockNode advances the fact over one CFG node. The dataflow
// fixpoint runs it silently (report false); the reporting sweep replays
// it with report true so each site is flagged exactly once.
func applyLockNode(pass *Pass, n ast.Node, st *lockFact, report bool) {
	rp := pass
	if !report {
		rp = nil
	}
	switch n := n.(type) {
	case *ast.ExprStmt:
		if key, op, pos := mutexOp(pass.Pkg.Info, n.X); op != "" {
			switch op {
			case "lock":
				st.held[key] = pos
			case "unlock":
				delete(st.held, key)
				delete(st.deferred, key)
			}
			return
		}
		reportBlockingExpr(rp, n.X, st)
	case *ast.DeferStmt:
		if key, op, _ := mutexOp(pass.Pkg.Info, n.Call); op == "unlock" {
			st.deferred[key] = true
		}
	case *ast.SendStmt:
		reportBlocking(rp, n.Pos(), st, "channel send")
		reportBlockingExpr(rp, n.Value, st)
	case *ast.SelectStmt:
		// Shallow marker node: the clause bodies are separate blocks.
		reportBlocking(rp, n.Pos(), st, "select")
	case *ast.ReturnStmt:
		for _, e := range n.Results {
			reportBlockingExpr(rp, e, st)
		}
		if report {
			for _, key := range st.heldKeys() {
				if !st.deferred[key] {
					pass.Reportf(n.Pos(), "return while holding %s (locked at %s) without an unlock on this path", key, pass.Pkg.Fset.Position(st.held[key]))
				}
			}
		}
		// Nothing runs after a return on this path.
		st.held = map[string]token.Pos{}
	case *ast.AssignStmt:
		for _, e := range n.Rhs {
			reportBlockingExpr(rp, e, st)
		}
	case ast.Expr:
		// Condition, tag, case or range expression of the control
		// statement ending the block.
		reportBlockingExpr(rp, n, st)
	}
}

// mutexOp classifies e as a sync lock or unlock call and returns the
// receiver key. Only methods actually declared by the sync package
// count, so domain types with Lock/Unlock APIs (the simulator's
// semaphore operations) are not confused for mutexes.
func mutexOp(info *types.Info, e ast.Expr) (key, op string, pos token.Pos) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", "", token.NoPos
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", token.NoPos
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", token.NoPos
	}
	recv := types.ExprString(sel.X)
	switch fn.Name() {
	case "Lock":
		return recv, "lock", call.Pos()
	case "RLock":
		return recv + "(R)", "lock", call.Pos()
	case "Unlock":
		return recv, "unlock", call.Pos()
	case "RUnlock":
		return recv + "(R)", "unlock", call.Pos()
	}
	return "", "", token.NoPos
}

// reportBlockingExpr flags blocking operations buried in an expression:
// channel receives, time.Sleep, and Wait calls (sync.WaitGroup.Wait,
// sync.Cond.Wait, exec.Cmd.Wait — anything that parks the goroutine).
func reportBlockingExpr(pass *Pass, e ast.Expr, st *lockFact) {
	if pass == nil || e == nil || len(st.held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate execution context
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				reportBlocking(pass, n.Pos(), st, "channel receive")
			}
		case *ast.CallExpr:
			if fn := calleeFunc(pass.Pkg.Info, n); fn != nil {
				if fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Sleep" {
					reportBlocking(pass, n.Pos(), st, "time.Sleep")
				} else if fn.Name() == "Wait" && fn.Type().(*types.Signature).Recv() != nil {
					reportBlocking(pass, n.Pos(), st, fn.FullName())
				}
			}
		}
		return true
	})
}

func reportBlocking(pass *Pass, pos token.Pos, st *lockFact, what string) {
	if pass == nil {
		return
	}
	if keys := st.heldKeys(); len(keys) > 0 {
		// One report per site is enough; name the first held lock.
		pass.Reportf(pos, "%s while holding %s: blocking under a mutex stalls every other waiter and can deadlock the wakeup path", what, keys[0])
	}
}
