package lint_test

import (
	"testing"

	"mpcp/internal/lint"
	"mpcp/internal/lint/linttest"
)

func TestJSONStable(t *testing.T) {
	linttest.Run(t, "testdata/src/jsonstable", lint.JSONStable)
}
