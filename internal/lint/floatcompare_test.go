package lint_test

import (
	"testing"

	"mpcp/internal/lint"
	"mpcp/internal/lint/linttest"
)

func TestFloatCompare(t *testing.T) {
	linttest.Run(t, "testdata/src/floatcompare", lint.FloatCompare)
}
