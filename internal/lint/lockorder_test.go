package lint_test

import (
	"testing"

	"mpcp/internal/lint"
	"mpcp/internal/lint/linttest"
)

func TestLockOrderFixture(t *testing.T) {
	linttest.Run(t, "testdata/src/lockorder", lint.LockOrder)
}
