// Package lockdiscipline is a linttest fixture: lock/unlock pairings
// the lockdiscipline analyzer must accept, the leaks and
// blocking-under-lock patterns it must reject, and the suppression
// escape hatch.
package lockdiscipline

import (
	"sync"
	"time"
)

type guarded struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
	ch chan int
}

func (g *guarded) deferred() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

func (g *guarded) balanced() int {
	g.mu.Lock()
	n := g.n
	g.mu.Unlock()
	return n
}

func (g *guarded) branchUnlocks(c bool) int {
	g.mu.Lock()
	if c {
		g.mu.Unlock()
		return 1
	}
	g.mu.Unlock()
	return 0
}

func (g *guarded) earlyReturn(c bool) int {
	g.mu.Lock()
	if c {
		return g.n // want `return while holding g\.mu`
	}
	g.mu.Unlock()
	return 0
}

func (g *guarded) fallThrough() {
	g.mu.Lock() // want `not released on the fall-through path`
	g.n++
}

func (g *guarded) readLeak(c bool) int {
	g.rw.RLock()
	if c {
		return g.n // want `return while holding g\.rw\(R\)`
	}
	g.rw.RUnlock()
	return 0
}

func (g *guarded) sendUnderLock(v int) {
	g.mu.Lock()
	g.ch <- v // want `channel send while holding g\.mu`
	g.mu.Unlock()
}

func (g *guarded) recvUnderLock() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return <-g.ch // want `channel receive while holding g\.mu`
}

func (g *guarded) selectUnderLock() {
	g.mu.Lock()
	defer g.mu.Unlock()
	select { // want `select while holding g\.mu`
	case v := <-g.ch:
		g.n = v
	default:
	}
}

func (g *guarded) sleepUnderLock() {
	g.mu.Lock()
	defer g.mu.Unlock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while holding g\.mu`
}

func (g *guarded) waitUnderLock(wg *sync.WaitGroup) {
	g.mu.Lock()
	defer g.mu.Unlock()
	wg.Wait() // want `Wait while holding g\.mu`
}

func (g *guarded) sendAfterUnlock(v int) {
	g.mu.Lock()
	g.n = v
	g.mu.Unlock()
	g.ch <- v
}

func (g *guarded) funcLitOwnContext() func() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return func() int {
		return <-g.ch
	}
}

func (g *guarded) suppressedSend(v int) {
	g.mu.Lock()
	g.ch <- v //rtlint:allow lockdiscipline fixture: channel is buffered and never full by construction
	g.mu.Unlock()
}

// domainLockOK proves the analyzer only tracks sync mutexes: the
// simulator's own Lock/Unlock segment builders share the names but not
// the package.
type domainSem struct{}

func (domainSem) Lock()   {}
func (domainSem) Unlock() {}

func domainLockOK(s domainSem, c bool) {
	s.Lock()
	if c {
		return
	}
}
