package determinismpool

func rogue(ch chan<- int) {
	go worker(ch, 0) // want `goroutine`
}
