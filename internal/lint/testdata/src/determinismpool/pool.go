// Package determinismpool is a linttest fixture for the determinism
// analyzer's blessed-goroutine-file escape hatch: `go` statements in
// pool.go are allowed when the analyzer is configured with
// AllowGoroutinesIn: ["pool.go"], while the same statement in any other
// file of the package still reports.
package determinismpool

func fanOut(n int) chan int {
	ch := make(chan int, n)
	for i := 0; i < n; i++ {
		go worker(ch, i)
	}
	return ch
}

func worker(ch chan<- int, i int) { ch <- i }
