// Package floatcompare is a linttest fixture: exact float comparisons
// the floatcompare analyzer must flag, next to the exempt patterns
// (zero sentinels, constant folds, epsilon comparisons, integers).
package floatcompare

import "math"

const eps = 1e-9

func exactEq(a, b float64) bool {
	return a == b // want `exact float comparison \(==\)`
}

func exactNeq(a, b float64) bool {
	return a != b // want `exact float comparison \(!=\)`
}

func mixedConst(u float64) bool {
	return u == 0.69 // want `exact float comparison \(==\)`
}

func float32Too(a, b float32) bool {
	return a == b // want `exact float comparison \(==\)`
}

func zeroSentinel(u float64) bool {
	return u == 0
}

func zeroSentinelFlipped(u float64) bool {
	return 0.0 != u
}

func constFold() bool {
	return 0.1+0.2 == 0.3
}

func epsilonCompare(a, b float64) bool {
	return math.Abs(a-b) <= eps
}

func orderedOK(a, b float64) bool {
	return a < b
}

func intCompare(a, b int) bool {
	return a == b
}

func suppressed(a, b float64) bool {
	return a == b //rtlint:allow floatcompare fixture: operands are copies of the same computation
}
