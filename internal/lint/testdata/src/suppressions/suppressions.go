// Package suppressions is the fixture for the `rtvet -suppressions`
// audit: one justified //rtlint:allow and one that names an analyzer
// but offers no reason, which the audit must fail on.
package suppressions

func justified() float64 {
	a, b := 0.1, 0.2
	//rtlint:allow floatcompare fixture: comparing against a sentinel the same code assigned
	if a == b {
		return a
	}
	return b
}

func unjustified() float64 {
	a, b := 0.1, 0.2
	//rtlint:allow floatcompare
	if a == b {
		return a
	}
	return b
}
