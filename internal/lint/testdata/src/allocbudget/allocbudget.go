// Package allocbudget is the AllocBudget fixture: the annotated
// functions demonstrate every flagged construct (positive), the clean
// forms the analyzer must accept (negative), and a justified
// suppression. Unannotated functions may allocate freely.
package allocbudget

type item struct{ k, v int }

// sunk keeps values observably live so nothing folds away.
var sunk any

func sinkAny(v any) { sunk = v }

func sinkVariadic(kind string, vs ...any) { sunk = kind }

//rtlint:hotpath
func hotViolations(xs []int, i int) []int {
	m := make(map[int]int) // want `hot path allocates: make`
	_ = m
	p := new(int) // want `hot path allocates: new`
	_ = p
	xs = append(xs, 1) // want `hot path allocates: append may grow`
	lit := []int{1, 2} // want `hot path allocates: slice literal`
	_ = lit
	mp := map[int]int{1: 2} // want `hot path allocates: map literal`
	_ = mp
	pt := &item{1, 2} // want `hot path allocates: &-composite literal`
	_ = pt
	f := func() int { return 0 } // want `hot path allocates: closure`
	_ = f
	return xs
}

//rtlint:hotpath
func hotBoxing(i int, s string) any {
	var a any = i // want `int assigned to interface any boxes`
	_ = a
	a = s // want `string assigned to interface any boxes`
	_ = a
	sinkAny(i)           // want `int passed as interface any boxes`
	sinkVariadic("k", i) // want `int passed as interface any boxes`
	_ = any(s)           // want `string converted to interface any boxes`
	return i             // want `int returned as interface any boxes`
}

//rtlint:hotpath
func hotClean(xs []int, i int, pj *item) []int {
	// The shrinking removal idiom never exceeds the existing capacity.
	xs = append(xs[:i], xs[i+1:]...)
	// A plain struct value literal stays on the stack.
	v := item{k: 1, v: 2}
	_ = v
	// Pointer-shaped values are stored directly in the interface word.
	var a any = pj
	_ = a
	sinkAny(pj)
	return xs
}

//rtlint:hotpath
func hotSuppressed(i int) {
	//rtlint:allow allocbudget fixture: cold diagnostics path, runs once per failed run
	sinkAny(i)
}

// coldAllocates is unannotated: the budget does not apply.
func coldAllocates() *item {
	xs := []int{1, 2, 3}
	_ = xs
	return &item{}
}
