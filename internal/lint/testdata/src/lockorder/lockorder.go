// Package lockorder is the LockOrder fixture: pair closes the classic
// AB/BA deadlock cycle directly, callPair closes one through a call,
// nested is a clean one-way ordering, and excused carries the
// justified-suppression case.
package lockorder

import "sync"

type pair struct {
	a sync.Mutex
	b sync.Mutex
}

func (p *pair) ab() {
	p.a.Lock()
	defer p.a.Unlock()
	p.b.Lock() // want `acquiring pair\.b while holding pair\.a closes a lock-order cycle \(pair\.a -> pair\.b -> pair\.a\)`
	p.b.Unlock()
}

func (p *pair) ba() {
	p.b.Lock()
	defer p.b.Unlock()
	p.a.Lock() // want `acquiring pair\.a while holding pair\.b closes a lock-order cycle \(pair\.b -> pair\.a -> pair\.b\)`
	p.a.Unlock()
}

type callPair struct {
	x sync.Mutex
	y sync.Mutex
}

func (c *callPair) lockY() {
	c.y.Lock()
	c.y.Unlock()
}

func (c *callPair) xThenY() {
	c.x.Lock()
	defer c.x.Unlock()
	c.lockY() // want `call to lockY may acquire callPair\.y while holding callPair\.x, closing a lock-order cycle`
}

func (c *callPair) yThenX() {
	c.y.Lock()
	defer c.y.Unlock()
	c.x.Lock() // want `acquiring callPair\.x while holding callPair\.y closes a lock-order cycle`
	c.x.Unlock()
}

// nested acquires its two mutexes in one order everywhere: no cycle.
type nested struct {
	outer sync.Mutex
	inner sync.Mutex
}

func (n *nested) lockBoth() {
	n.outer.Lock()
	defer n.outer.Unlock()
	n.inner.Lock()
	n.inner.Unlock()
}

func (n *nested) lockOuterOnly() {
	n.outer.Lock()
	n.outer.Unlock()
}

// excused inverts its order in one place on purpose; both edges of the
// cycle carry a justified suppression.
type excused struct {
	m sync.Mutex
	n sync.Mutex
}

func (e *excused) mn() {
	e.m.Lock()
	defer e.m.Unlock()
	//rtlint:allow lockorder fixture: the n critical section is try-only and cannot block here
	e.n.Lock()
	e.n.Unlock()
}

func (e *excused) nm() {
	e.n.Lock()
	defer e.n.Unlock()
	//rtlint:allow lockorder fixture: paired suppression of the reverse edge
	e.m.Lock()
	e.m.Unlock()
}
