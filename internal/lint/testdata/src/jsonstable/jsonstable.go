// Package jsonstable is a linttest fixture: JSONL-style marshal calls
// whose payload reaches a bare map (flagged) versus schemas built on
// sorted slices or shielded by a custom MarshalJSON (accepted).
package jsonstable

import (
	"encoding/json"
	"io"
	"sort"
)

type snapshot struct {
	Name   string         `json:"name"`
	Counts map[string]int `json:"counts"`
}

type record struct {
	Seq   int        `json:"seq"`
	Inner []snapshot `json:"inner"`
}

func writeSnapshot(s snapshot) ([]byte, error) {
	return json.Marshal(s) // want `bare map jsonstable\.snapshot\.Counts`
}

func writeIndented(rs []record) ([]byte, error) {
	return json.MarshalIndent(rs, "", "  ") // want `bare map \[\]jsonstable\.record\[\]\.Inner\[\]\.Counts`
}

func streamSnapshot(w io.Writer, s *snapshot) error {
	return json.NewEncoder(w).Encode(s) // want `bare map \*jsonstable\.snapshot\.Counts`
}

// cleanRecord is the blessed shape: map-like data as a sorted slice.
type countEntry struct {
	Key string `json:"key"`
	N   int    `json:"n"`
}

type cleanRecord struct {
	Name   string       `json:"name"`
	Counts []countEntry `json:"counts"`
}

func writeClean(r cleanRecord) ([]byte, error) {
	return json.Marshal(r)
}

// sortedMap shields its map behind a MarshalJSON that emits sorted keys.
type sortedMap map[string]int

func (m sortedMap) MarshalJSON() ([]byte, error) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type entry struct {
		Key string `json:"key"`
		N   int    `json:"n"`
	}
	out := make([]entry, 0, len(keys))
	for _, k := range keys {
		out = append(out, entry{Key: k, N: m[k]})
	}
	return json.Marshal(out)
}

type shielded struct {
	Name   string    `json:"name"`
	Counts sortedMap `json:"counts"`
}

func writeShielded(s shielded) ([]byte, error) {
	return json.Marshal(s)
}

// hiddenMap fields that encoding/json never emits are fine.
type hiddenMap struct {
	Name    string         `json:"name"`
	scratch map[string]int // unexported: skipped by encoding/json
	Dropped map[string]int `json:"-"`
}

func writeHidden(h hiddenMap) ([]byte, error) {
	_ = h.scratch
	return json.Marshal(h)
}

func suppressedMarshal(s snapshot) ([]byte, error) {
	return json.Marshal(s) //rtlint:allow jsonstable fixture: debug-only dump, never content-addressed
}
