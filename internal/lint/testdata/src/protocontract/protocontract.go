// Package protocontract is the ProtoContract fixture: good is a minimal
// correct protocol, leaky is the deliberately broken protocol that leaks
// a semaphore on an early return (and violates the other contract
// clauses), and excused carries the justified-suppression case.
package protocontract

import (
	"mpcp/internal/sim"
	"mpcp/internal/task"
)

var grantCount int // want `protocol package declares mutable package-level state: var grantCount`

type semState struct {
	holder *sim.Job
	next   *sim.Job
}

// good acquires via CompleteLock, blocks via SuspendGlobal (through a
// delegated helper), releases on every exit path, pairs Grant with
// MakeReady and clears its job-keyed bookkeeping in OnFinish.
type good struct {
	sems map[task.SemID]*semState
	pend map[*sim.Job]int
}

var _ sim.Protocol = (*good)(nil)

func (p *good) Name() string { return "good" }

func (p *good) Init(e *sim.Engine) error {
	p.sems = make(map[task.SemID]*semState)
	p.pend = make(map[*sim.Job]int)
	return nil
}

func (p *good) OnRelease(e *sim.Engine, j *sim.Job) { e.MakeReady(j) }

func (p *good) TryLock(e *sim.Engine, j *sim.Job, s task.SemID) bool {
	st := p.sems[s]
	if st.holder == nil {
		st.holder = j
		e.CompleteLock(j, s)
		return true
	}
	return p.enqueue(e, j, s)
}

// enqueue is the delegation target: the contract check follows the
// returned call into it.
func (p *good) enqueue(e *sim.Engine, j *sim.Job, s task.SemID) bool {
	p.pend[j] = int(s)
	e.SuspendGlobal(j, s)
	return false
}

func (p *good) Unlock(e *sim.Engine, j *sim.Job, s task.SemID) {
	st := p.sems[s]
	st.holder = nil
	if next := st.next; next != nil {
		st.holder = next
		e.CompleteLock(next, s)
		e.Grant(next, s, 1)
		e.MakeReady(next)
	}
}

func (p *good) OnFinish(e *sim.Engine, j *sim.Job) {
	delete(p.pend, j)
}

// leaky is the deliberately broken protocol.
type leaky struct {
	sems map[task.SemID]*semState
	pend map[*sim.Job]int
}

var _ sim.Protocol = (*leaky)(nil)

func (p *leaky) Name() string { return "leaky" }

func (p *leaky) Init(e *sim.Engine) error {
	p.sems = make(map[task.SemID]*semState)
	p.pend = make(map[*sim.Job]int)
	return nil
}

func (p *leaky) OnRelease(e *sim.Engine, j *sim.Job) { e.MakeReady(j) }

func (p *leaky) TryLock(e *sim.Engine, j *sim.Job, s task.SemID) bool {
	st := p.sems[s]
	if st.holder == nil {
		st.holder = j
		return true // want `TryLock returns true without completing the acquisition`
	}
	p.pend[j] = int(s)
	return false // want `TryLock returns false without blocking the requester`
}

func (p *leaky) Unlock(e *sim.Engine, j *sim.Job, s task.SemID) {
	st := p.sems[s]
	if st.holder != j {
		return // want `Unlock returns without releasing or transferring the semaphore on this path`
	}
	st.holder = nil
	if next := st.next; next != nil {
		e.Grant(next, s, 1) // want `Grant\(next\) is not always followed by MakeReady\(next\)`
	}
}

func (p *leaky) OnFinish(e *sim.Engine, j *sim.Job) {} // want `OnFinish does not delete from job-keyed map field pend`

// excused embeds good and overrides Unlock with an early return whose
// semaphore is released elsewhere — the justified-suppression case.
type excused struct {
	good
	remote map[task.SemID]bool
}

var _ sim.Protocol = (*excused)(nil)

func (p *excused) Unlock(e *sim.Engine, j *sim.Job, s task.SemID) {
	if p.remote[s] {
		//rtlint:allow protocontract fixture: remote semaphores are released by the agent
		return
	}
	p.sems[s].holder = nil
}
