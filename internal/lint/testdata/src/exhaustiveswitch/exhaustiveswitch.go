// Package exhaustiveswitch is a linttest fixture: switches over a
// local enum that the exhaustiveswitch analyzer must accept (full
// coverage, explicit default) and reject (silently missing constants).
package exhaustiveswitch

// Kind mimics the repository's trace event-kind / protocol enums: a
// defined integer type with several package-level constants.
type Kind int

const (
	KindA Kind = iota + 1
	KindB
	KindC
)

// KindAlias covers the same value as KindA; coverage is judged by
// value, so a case on the alias counts for both names.
const KindAlias = KindA

func full(k Kind) string {
	switch k {
	case KindA:
		return "a"
	case KindB:
		return "b"
	case KindC:
		return "c"
	}
	return ""
}

func withDefault(k Kind) string {
	switch k {
	case KindA:
		return "a"
	default:
		return "other"
	}
}

func aliasCovers(k Kind) string {
	switch k {
	case KindAlias:
		return "a"
	case KindB:
		return "b"
	case KindC:
		return "c"
	}
	return ""
}

func missing(k Kind) string {
	switch k { // want `missing KindB, KindC`
	case KindA:
		return "a"
	}
	return ""
}

func missingOne(k Kind) string {
	switch k { // want `missing KindC`
	case KindA:
		return "a"
	case KindB:
		return "b"
	}
	return ""
}

func suppressedMissing(k Kind) string {
	//rtlint:allow exhaustiveswitch fixture: the remaining kinds are exercised elsewhere
	switch k {
	case KindB:
		return "b"
	}
	return ""
}

// lone has a single constant, so it is not an enum and switches over it
// are unconstrained.
type lone int

const onlyOne lone = 1

func loneSwitch(v lone) bool {
	switch v {
	case onlyOne:
		return true
	}
	return false
}

// plainInt switches over built-in types are never enum switches.
func plainInt(v int) bool {
	switch v {
	case 1:
		return true
	}
	return false
}

// Policy mirrors the simulator's two-member overload-policy enum: the
// zero value is a real member (the "continue" policy), so a switch that
// only handles the non-zero member is still incomplete.
type Policy int

const (
	PolicyContinue Policy = iota
	PolicyAbort
)

func policyFull(p Policy) string {
	switch p {
	case PolicyContinue:
		return "continue"
	case PolicyAbort:
		return "abort"
	}
	return ""
}

func policyMissingZero(p Policy) string {
	switch p { // want `missing PolicyContinue`
	case PolicyAbort:
		return "abort"
	}
	return ""
}
