// Package determinism is a linttest fixture: every construct the
// determinism analyzer must flag, next to the blessed alternatives it
// must not.
package determinism

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want `time\.Now`
}

func globalRand() int {
	return rand.Intn(10) // want `math/rand\.Intn`
}

func globalFloat() float64 {
	return rand.Float64() // want `math/rand\.Float64`
}

func seededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

func mapOrderLeak(m map[string]int) []string {
	var out []string
	for k := range m { // want `range over map`
		out = append(out, k)
	}
	return out
}

func mapSortedAfter(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func mapSetBuild(m map[string]int) map[string]bool {
	set := make(map[string]bool, len(m))
	for k := range m {
		set[k] = true
	}
	return set
}

func mapDeleteOnly(m, drop map[string]int) {
	for k := range drop {
		delete(m, k)
	}
}

func mapPrint(m map[string]int) {
	for k, v := range m { // want `range over map`
		fmt.Println(k, v)
	}
}

func mapEarlyReturn(m map[string]int) string {
	for k, v := range m { // want `range over map`
		if v > 10 {
			return k
		}
	}
	return ""
}

func mapAccumulate(m map[string]int) int {
	n := 0
	for _, v := range m { // want `range over map`
		n += v
	}
	return n
}

func spawn(ch chan<- int) {
	go send(ch) // want `goroutine`
}

func send(ch chan<- int) { ch <- 1 }

func suppressedClock() time.Time {
	//rtlint:allow determinism fixture: suppression on the line above must hold
	return time.Now()
}

func suppressedInline() int {
	return rand.Intn(10) //rtlint:allow determinism fixture: suppression on the same line must hold
}
