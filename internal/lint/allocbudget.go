package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AllocBudget enforces a zero-heap-allocation budget on functions
// annotated
//
//	//rtlint:hotpath
//
// in their doc comment (ROADMAP item 3: the per-tick simulator loop,
// the release queue and the priority queue must stop allocating so a
// hyperperiod simulation runs garbage-free). Inside an annotated
// function every reachable CFG node is checked for the constructs that
// the compiler turns into heap allocations:
//
//   - &-taken or escaping composite literals, slice and map literals;
//   - make and new calls;
//   - closures (function literals capture their environment);
//   - append calls that can grow the backing array — the shrinking
//     removal idiom append(x[:i], x[i+1:]...) is exempt, it can never
//     exceed the existing capacity;
//   - interface boxing: a concrete non-pointer-shaped value assigned,
//     passed (including variadic ...any — the fmt argument slab),
//     returned or converted to an interface type allocates the box.
//
// The check is syntactic over typed ASTs and deliberately
// over-approximates (the compiler may yet prove a construct
// non-escaping); `rtvet -escapes` cross-checks the annotated ranges
// against the real escape analysis (`go build -gcflags=-m`), and both
// report under this analyzer's name so one //rtlint:allow allocbudget
// with justification covers a deliberate cold-path allocation (error
// construction on paths that end the run).
var AllocBudget = &Analyzer{
	Name: "allocbudget",
	Doc:  "forbids heap-allocating constructs in //rtlint:hotpath functions",
}

func init() {
	AllocBudget.Run = func(pass *Pass) {
		inspectFuncs(pass.Pkg, func(decl *ast.FuncDecl) {
			if !isHotpath(decl) {
				return
			}
			cfg := NewCFG(decl.Body)
			ab := &allocChecker{pass: pass, sig: funcSignature(pass.Pkg.Info, decl)}
			for _, blk := range cfg.Blocks {
				if !blk.Live {
					continue
				}
				for _, n := range blk.Nodes {
					ab.node(n)
				}
			}
		})
	}
}

// isHotpath reports whether the declaration's doc comment carries the
// //rtlint:hotpath directive.
func isHotpath(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if strings.TrimSpace(c.Text) == "//rtlint:hotpath" {
			return true
		}
	}
	return false
}

// hotpathFuncs returns every annotated declaration in the package.
func hotpathFuncs(pkg *Package) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	inspectFuncs(pkg, func(decl *ast.FuncDecl) {
		if isHotpath(decl) {
			out = append(out, decl)
		}
	})
	return out
}

func funcSignature(info *types.Info, decl *ast.FuncDecl) *types.Signature {
	if obj, ok := info.Defs[decl.Name].(*types.Func); ok {
		return obj.Type().(*types.Signature)
	}
	return nil
}

type allocChecker struct {
	pass *Pass
	sig  *types.Signature
}

// node walks one CFG node. Select markers are shallow (their bodies are
// separate blocks); function literals are flagged once and not entered.
func (a *allocChecker) node(n ast.Node) {
	if _, ok := n.(*ast.SelectStmt); ok {
		return
	}
	info := a.pass.Pkg.Info
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			a.pass.Reportf(n.Pos(), "hot path allocates: closure captures its environment; hoist it out of the //rtlint:hotpath function")
			return false
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					a.pass.Reportf(n.Pos(), "hot path allocates: &-composite literal escapes to the heap")
					return false
				}
			}
		case *ast.CompositeLit:
			t := info.Types[n].Type
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					a.pass.Reportf(n.Pos(), "hot path allocates: slice literal")
				case *types.Map:
					a.pass.Reportf(n.Pos(), "hot path allocates: map literal")
				}
			}
		case *ast.CallExpr:
			a.call(n)
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if len(n.Lhs) != len(n.Rhs) {
					break // comma-ok / multi-value call; handled via the call itself
				}
				lt := info.Types[n.Lhs[i]].Type
				a.boxing(rhs, lt, "assigned to")
			}
		case *ast.ValueSpec:
			for i, v := range n.Values {
				if i < len(n.Names) {
					if obj := info.Defs[n.Names[i]]; obj != nil {
						a.boxing(v, obj.Type(), "assigned to")
					}
				}
			}
		case *ast.ReturnStmt:
			if a.sig != nil && a.sig.Results().Len() == len(n.Results) {
				for i, res := range n.Results {
					a.boxing(res, a.sig.Results().At(i).Type(), "returned as")
				}
			}
		}
		return true
	})
}

// call checks one call expression: builtin allocators, append growth,
// interface conversions, and boxing at the parameter boundary.
func (a *allocChecker) call(call *ast.CallExpr) {
	info := a.pass.Pkg.Info
	// Builtins and conversions first: their Fun is not a *types.Func.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				a.pass.Reportf(call.Pos(), "hot path allocates: make")
			case "new":
				a.pass.Reportf(call.Pos(), "hot path allocates: new")
			case "append":
				if !isShrinkingAppend(call) {
					a.pass.Reportf(call.Pos(), "hot path allocates: append may grow the backing array; pre-size the slice or use the shrinking removal idiom")
				}
			}
			return
		}
	}
	if tv, ok := info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() {
		// Conversion: T(x). Only interface targets box.
		if len(call.Args) == 1 {
			a.boxing(call.Args[0], tv.Type, "converted to")
		}
		return
	}
	sigT, _ := info.Types[ast.Unparen(call.Fun)].Type.(*types.Signature)
	if sigT == nil {
		return
	}
	params := sigT.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sigT.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if call.Ellipsis.IsValid() {
				pt = last // s... passes the slice through, no per-element box
			} else if sl, ok := last.(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		a.boxing(arg, pt, "passed as")
	}
}

// boxing reports when expr, a concrete non-pointer-shaped value, meets
// an interface-typed destination: the runtime copies the value into a
// heap box. Pointer-shaped kinds (pointers, channels, maps, funcs) are
// stored directly in the interface word and do not allocate.
func (a *allocChecker) boxing(expr ast.Expr, dst types.Type, how string) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	if _, ok := dst.(*types.TypeParam); ok {
		return
	}
	tv := a.pass.Pkg.Info.Types[expr]
	if tv.Type == nil || tv.IsNil() {
		return
	}
	src := tv.Type
	if _, ok := src.(*types.TypeParam); ok {
		return
	}
	if types.IsInterface(src) || pointerShaped(src) {
		return
	}
	a.pass.Reportf(expr.Pos(), "hot path allocates: %s %s interface %s boxes the value on the heap", types.TypeString(src, types.RelativeTo(a.pass.Pkg.Types)), how, types.TypeString(dst, types.RelativeTo(a.pass.Pkg.Types)))
}

func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
		return true
	}
	return false
}

// isShrinkingAppend recognizes the removal idiom
// append(x[:i], x[j:]...) over one and the same base slice, whose
// result can never exceed the existing capacity.
func isShrinkingAppend(call *ast.CallExpr) bool {
	if len(call.Args) != 2 || !call.Ellipsis.IsValid() {
		return false
	}
	dst, ok := call.Args[0].(*ast.SliceExpr)
	if !ok || dst.Low != nil || dst.High == nil || dst.Max != nil {
		return false // must be the prefix x[:i]
	}
	src, ok := call.Args[1].(*ast.SliceExpr)
	if !ok || src.Low == nil || src.High != nil || src.Max != nil {
		return false // must be the suffix x[j:]
	}
	return types.ExprString(dst.X) == types.ExprString(src.X)
}
