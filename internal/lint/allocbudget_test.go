package lint_test

import (
	"testing"

	"mpcp/internal/lint"
	"mpcp/internal/lint/linttest"
)

func TestAllocBudgetFixture(t *testing.T) {
	linttest.Run(t, "testdata/src/allocbudget", lint.AllocBudget)
}
