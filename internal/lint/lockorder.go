package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds the interprocedural lock-acquisition graph of the
// scoped packages and fails on cycles. A node is a lock class — a
// sync.Mutex / sync.RWMutex identified by its declaring struct type and
// field (or package-level variable) — and an edge A -> B is recorded
// whenever some function acquires B while holding A, either directly or
// by calling (transitively) a function that may acquire B. Two
// functions that take the same pair of locks in opposite orders can
// deadlock under the right interleaving even though each function is
// individually correct under lockdiscipline; the cycle in the class
// graph is the static witness.
//
// The class abstraction is per-field, not per-instance: two distinct
// values of the same struct type share a class, so self-edges are
// reported too (locking a class while holding it is a self-deadlock
// with sync's non-reentrant mutexes, and a genuine order hazard across
// instances). Function literals are separate execution contexts and are
// analyzed independently; deferred unlocks keep the lock held for the
// rest of the body, exactly as at run time.
var LockOrder = &Analyzer{
	Name:       "lockorder",
	Doc:        "fails on cycles in the interprocedural mutex acquisition-order graph",
	RunProgram: runLockOrder,
}

type lockOrderProg struct {
	pass       *Pass
	funcs      map[string]*srcFunc
	acq        map[string]map[string]bool // funcKey -> class ids it may acquire
	inProgress map[string]bool
	names      map[string]string // class id -> display name
	edges      map[string]map[string]*orderEdge
}

// orderEdge is the first-seen witness for "B acquired while holding A".
type orderEdge struct {
	pos     token.Pos
	viaCall string // callee name when the acquisition happens inside a call
}

func runLockOrder(pass *Pass) {
	lo := &lockOrderProg{
		pass:       pass,
		funcs:      map[string]*srcFunc{},
		acq:        map[string]map[string]bool{},
		inProgress: map[string]bool{},
		names:      map[string]string{},
		edges:      map[string]map[string]*orderEdge{},
	}
	for _, pkg := range pass.Pkgs {
		inspectFuncs(pkg, func(decl *ast.FuncDecl) {
			if fn, ok := pkg.Info.Defs[decl.Name].(*types.Func); ok {
				lo.funcs[funcKey(fn)] = &srcFunc{pkg: pkg, decl: decl}
			}
		})
	}
	for _, pkg := range pass.Pkgs {
		inspectFuncs(pkg, func(decl *ast.FuncDecl) {
			lo.analyzeBody(pkg, decl.Body)
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					lo.analyzeBody(pkg, lit.Body)
				}
				return true
			})
		})
	}
	lo.reportCycles()
}

// lockClass identifies the mutex behind the receiver expression of a
// sync Lock/Unlock call. The id is globally unique; the display name is
// what reports print.
func lockClass(pkg *Package, e ast.Expr) (id, display string) {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[x]; ok {
			recv := sel.Recv()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			if named, ok := recv.(*types.Named); ok {
				obj := named.Obj()
				display = obj.Name() + "." + x.Sel.Name
				if obj.Pkg() != nil {
					return obj.Pkg().Path() + "." + display, display
				}
				return display, display
			}
		}
		if v, ok := pkg.Info.Uses[x.Sel].(*types.Var); ok && v.Pkg() != nil {
			display = x.Sel.Name
			return v.Pkg().Path() + "." + display, display
		}
	case *ast.Ident:
		if v, ok := pkg.Info.Uses[x].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name(), v.Name()
		}
	}
	// Function-local or otherwise unnamed mutex: unique per package and
	// printed expression. Cross-function cycles cannot involve it by
	// name, but within one body the ordering still holds.
	display = types.ExprString(e)
	return pkg.ImportPath + ":" + display, display
}

// lockOrderOp classifies e as a sync lock or unlock call with its class.
func lockOrderOp(pkg *Package, call *ast.CallExpr) (id, display, op string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", ""
	}
	fn, _ := pkg.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", ""
	}
	switch fn.Name() {
	case "Lock", "RLock":
		op = "lock"
	case "Unlock", "RUnlock":
		op = "unlock"
	default:
		return "", "", ""
	}
	id, display = lockClass(pkg, sel.X)
	return id, display, op
}

// mayAcquire is the memoized transitive may-acquire summary of fn.
func (lo *lockOrderProg) mayAcquire(key string) map[string]bool {
	if s, ok := lo.acq[key]; ok {
		return s
	}
	if lo.inProgress[key] {
		return nil
	}
	sf := lo.funcs[key]
	if sf == nil {
		return nil
	}
	lo.inProgress[key] = true
	defer delete(lo.inProgress, key)
	out := map[string]bool{}
	inspectNode(sf.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, display, op := lockOrderOp(sf.pkg, call); op == "lock" {
			out[id] = true
			lo.names[id] = display
		} else if op == "" {
			if callee := calleeFunc(sf.pkg.Info, call); callee != nil {
				for id := range lo.mayAcquire(funcKey(callee)) {
					out[id] = true
				}
			}
		}
		return true
	})
	lo.acq[key] = out
	return out
}

func (lo *lockOrderProg) addEdge(from, to string, pos token.Pos, viaCall string) {
	m := lo.edges[from]
	if m == nil {
		m = map[string]*orderEdge{}
		lo.edges[from] = m
	}
	if cur, ok := m[to]; !ok || pos < cur.pos {
		m[to] = &orderEdge{pos: pos, viaCall: viaCall}
	}
}

// heldFact maps held class ids to acquisition position.
type heldFact map[string]token.Pos

func joinHeldFacts(dst, src heldFact) heldFact {
	if src == nil {
		return dst
	}
	if dst == nil {
		dst = heldFact{}
		for k, v := range src {
			dst[k] = v
		}
		return dst
	}
	merged := heldFact{}
	for k, v := range dst {
		merged[k] = v
	}
	for k, v := range src {
		if cur, ok := merged[k]; !ok || v < cur {
			merged[k] = v
		}
	}
	return merged
}

func heldFactsEqual(a, b heldFact) bool {
	if a == nil || b == nil {
		return (a == nil) == (b == nil)
	}
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if w, ok := b[k]; !ok || v != w {
			return false
		}
	}
	return true
}

// analyzeBody runs the held-set dataflow over one body and records
// acquisition-order edges. Edge recording is idempotent (min position
// wins), so it happens directly inside the fixpoint transfer.
func (lo *lockOrderProg) analyzeBody(pkg *Package, body *ast.BlockStmt) {
	cfg := NewCFG(body)
	apply := func(n ast.Node, held heldFact) {
		if _, ok := n.(*ast.DeferStmt); ok {
			// Deferred unlocks keep the lock held for the rest of the
			// body; deferred anything-else runs after it too.
			return
		}
		inspectNode(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, display, op := lockOrderOp(pkg, call)
			switch op {
			case "lock":
				lo.names[id] = display
				for heldID := range held {
					lo.addEdge(heldID, id, call.Pos(), "")
				}
				held[id] = call.Pos()
			case "unlock":
				delete(held, id)
			default:
				if len(held) == 0 {
					return true
				}
				if callee := calleeFunc(pkg.Info, call); callee != nil {
					name := callee.Name()
					for acqID := range lo.mayAcquire(funcKey(callee)) {
						for heldID := range held {
							lo.addEdge(heldID, acqID, call.Pos(), name)
						}
					}
				}
			}
			return true
		})
	}
	df := Dataflow[heldFact]{
		CFG:    cfg,
		Entry:  heldFact{},
		Bottom: func() heldFact { return nil },
		Join:   joinHeldFacts,
		Equal:  heldFactsEqual,
		Transfer: func(blk *Block, in heldFact) heldFact {
			st := heldFact{}
			for k, v := range in {
				st[k] = v
			}
			for _, n := range blk.Nodes {
				apply(n, st)
			}
			return st
		},
	}
	df.Run()
}

// reportCycles flags every edge that lies on a cycle, with the shortest
// closing path as the witness.
func (lo *lockOrderProg) reportCycles() {
	froms := make([]string, 0, len(lo.edges))
	for from := range lo.edges {
		froms = append(froms, from)
	}
	sort.Strings(froms)
	for _, from := range froms {
		tos := make([]string, 0, len(lo.edges[from]))
		for to := range lo.edges[from] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			path := lo.shortestPath(to, from)
			if path == nil {
				continue
			}
			edge := lo.edges[from][to]
			// path runs to -> ... -> from, so prefixing the edge source
			// closes the cycle: from -> to -> ... -> from.
			cycle := make([]string, 0, len(path)+1)
			cycle = append(cycle, lo.names[from])
			for _, id := range path {
				cycle = append(cycle, lo.names[id])
			}
			witness := strings.Join(cycle, " -> ")
			if edge.viaCall != "" {
				lo.pass.Reportf(edge.pos, "call to %s may acquire %s while holding %s, closing a lock-order cycle (%s); acquire mutexes in one global order",
					edge.viaCall, lo.names[to], lo.names[from], witness)
			} else {
				lo.pass.Reportf(edge.pos, "acquiring %s while holding %s closes a lock-order cycle (%s); acquire mutexes in one global order",
					lo.names[to], lo.names[from], witness)
			}
		}
	}
}

// shortestPath returns the node sequence from -> ... -> to (inclusive of
// both) along recorded edges, or nil when unreachable. BFS over sorted
// neighbors keeps the witness deterministic.
func (lo *lockOrderProg) shortestPath(from, to string) []string {
	prev := map[string]string{from: from}
	queue := []string{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == to {
			var path []string
			for n := to; ; n = prev[n] {
				path = append(path, n)
				if n == from && len(path) > 0 && prev[n] == n {
					break
				}
			}
			for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
				path[i], path[j] = path[j], path[i]
			}
			return path
		}
		next := make([]string, 0, len(lo.edges[cur]))
		for n := range lo.edges[cur] {
			next = append(next, n)
		}
		sort.Strings(next)
		for _, n := range next {
			if _, seen := prev[n]; !seen {
				prev[n] = cur
				queue = append(queue, n)
			}
		}
	}
	return nil
}
