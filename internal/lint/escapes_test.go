package lint_test

import (
	"strings"
	"testing"

	"mpcp/internal/lint"
)

// TestCheckEscapesFixture proves the -gcflags=-m cross-check catches
// real escapes inside annotated functions: the allocbudget fixture's
// hot functions leak values through the package sink on purpose.
func TestCheckEscapesFixture(t *testing.T) {
	root, err := lint.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.CheckEscapes(root, "./internal/lint/testdata/src/allocbudget")
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("expected escape findings in the fixture's hot functions, got none")
	}
	for _, d := range diags {
		if d.Analyzer != "allocbudget" {
			t.Errorf("finding under analyzer %q, want allocbudget: %s", d.Analyzer, d)
		}
		if !strings.Contains(d.Message, "escape analysis:") || !strings.Contains(d.Message, "//rtlint:hotpath") {
			t.Errorf("message missing escape-analysis framing: %s", d)
		}
	}
	// The suppressed hot function must not report even though its sink
	// call escapes: hotSuppressed carries //rtlint:allow allocbudget.
	for _, d := range diags {
		if strings.Contains(d.Message, "hotSuppressed") {
			t.Errorf("suppressed function still reported: %s", d)
		}
	}
}

// TestCheckEscapesHotPackages is the vet-alloc gate in miniature: the
// annotated simulator/relq/pqueue hot paths must be escape-free.
func TestCheckEscapesHotPackages(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles three packages with -gcflags=-m")
	}
	root, err := lint.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.CheckEscapes(root, "./internal/sim", "./internal/relq", "./internal/pqueue")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("hot path escapes: %s", d)
	}
}
