package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// ProtoContract enforces the behavioural contract every sim.Protocol
// implementation owes the engine, statically, over the shared CFG layer:
//
//   - TryLock may return true only on paths that completed the
//     acquisition (e.CompleteLock, possibly via a helper), and false
//     only on paths that left the requester blocked or spinning
//     (BlockLocal / SuspendGlobal / SpinGlobal). A delegating
//     `return p.helper(...)` is checked by recursing into the helper.
//   - Unlock must release or transfer the semaphore on every exit path:
//     clearing holder state, deleting queue bookkeeping, shrinking the
//     held list, or completing the lock for / granting to the next
//     waiter all count. An early return that does none of these is the
//     classic leaked-semaphore bug (the next waiter suspends forever).
//   - Every e.Grant must be matched by an e.MakeReady of the same job on
//     every path, so the EvGrant trace event is always paired with a
//     wakeup. Functions that spawn agents are exempt: the agent model
//     readies the gcs surrogate through SpawnAgent itself.
//   - OnFinish must delete the finished job from every job-keyed map the
//     protocol keeps. The engine calls OnFinish for overload-aborted
//     jobs too (the force-release path), so a surviving entry is state
//     leaked per abort.
//   - Protocol packages must not keep mutable package-level state; all
//     protocol state lives on the Protocol value so concurrent sweeps
//     stay independent. Blank interface-assertion vars are exempt.
//
// The path checks are may-analyses (facts union at joins), which keeps
// them quiet on correct code at the cost of missing a leak that a
// sibling branch happens to cover; the early-return and fall-through
// leaks that occur in practice are exactly what they catch. Helper
// bodies outside the loaded source set cannot be analyzed and are
// trusted. Intentional exceptions — a protocol whose global sections are
// released remotely by an agent — carry //rtlint:allow protocontract
// with the reason.
var ProtoContract = &Analyzer{
	Name:       "protocontract",
	Doc:        "verifies sim.Protocol implementations acquire, block, release and clean up on every CFG path",
	RunProgram: runProtoContract,
}

// protoSimPath is the import path of the package defining the Protocol
// interface and the Engine services the contract is phrased in.
const protoSimPath = "mpcp/internal/sim"

func runProtoContract(pass *Pass) {
	iface := findProtocolInterface(pass.Pkgs)
	if iface == nil {
		return // nothing in scope touches the simulator
	}
	pr := &protoProg{
		pass:       pass,
		funcs:      map[string]*srcFunc{},
		summaries:  map[string]*callFacts{},
		inProgress: map[string]bool{},
		tryChecked: map[string]bool{},
	}
	for _, pkg := range pass.Pkgs {
		inspectFuncs(pkg, func(decl *ast.FuncDecl) {
			if fn, ok := pkg.Info.Defs[decl.Name].(*types.Func); ok {
				pr.funcs[funcKey(fn)] = &srcFunc{pkg: pkg, decl: decl}
			}
		})
	}

	for _, pkg := range pass.Pkgs {
		impls := implementorsOf(pkg, iface)
		if len(impls) == 0 {
			continue
		}
		pr.checkPackageState(pkg)
		for _, decl := range allFuncDecls(pkg) {
			pr.checkGrantPairing(pkg, decl)
		}
		for _, impl := range impls {
			for name, decl := range methodDecls(pkg, impl) {
				switch name {
				case "TryLock":
					if fn, ok := pkg.Info.Defs[decl.Name].(*types.Func); ok {
						pr.checkTryFunc(fn)
					}
				case "Unlock":
					pr.checkUnlock(pkg, decl)
				case "OnFinish":
					pr.checkOnFinish(pkg, impl, decl)
				}
			}
		}
	}
}

// findProtocolInterface locates sim.Protocol among the loaded packages
// or their (transitive) imports.
func findProtocolInterface(pkgs []*Package) *types.Interface {
	seen := map[*types.Package]bool{}
	var find func(p *types.Package) *types.Interface
	find = func(p *types.Package) *types.Interface {
		if p == nil || seen[p] {
			return nil
		}
		seen[p] = true
		if p.Path() == protoSimPath {
			if tn, ok := p.Scope().Lookup("Protocol").(*types.TypeName); ok {
				if iface, ok := tn.Type().Underlying().(*types.Interface); ok {
					return iface
				}
			}
			return nil
		}
		for _, imp := range p.Imports() {
			if iface := find(imp); iface != nil {
				return iface
			}
		}
		return nil
	}
	for _, pkg := range pkgs {
		if pkg.Types == nil {
			continue
		}
		if iface := find(pkg.Types); iface != nil {
			return iface
		}
	}
	return nil
}

// implementorsOf returns the concrete named types declared in pkg that
// implement iface (by value or pointer receiver), in declaration order.
func implementorsOf(pkg *Package, iface *types.Interface) []*types.Named {
	if pkg.Types == nil || pkg.Types.Path() == protoSimPath {
		return nil
	}
	scope := pkg.Types.Scope()
	var out []*types.Named
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || types.IsInterface(named) {
			continue
		}
		if types.Implements(named, iface) || types.Implements(types.NewPointer(named), iface) {
			out = append(out, named)
		}
	}
	return out
}

// methodDecls maps method name -> declaration for methods declared
// directly on impl (promoted methods are checked on their own type).
func methodDecls(pkg *Package, impl *types.Named) map[string]*ast.FuncDecl {
	out := map[string]*ast.FuncDecl{}
	inspectFuncs(pkg, func(decl *ast.FuncDecl) {
		if decl.Recv == nil {
			return
		}
		fn, ok := pkg.Info.Defs[decl.Name].(*types.Func)
		if !ok {
			return
		}
		recv := fn.Type().(*types.Signature).Recv()
		if recv == nil {
			return
		}
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj() == impl.Obj() {
			out[decl.Name.Name] = decl
		}
	})
	return out
}

func allFuncDecls(pkg *Package) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	inspectFuncs(pkg, func(decl *ast.FuncDecl) { out = append(out, decl) })
	return out
}

type srcFunc struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// callFacts is the transitive may-summary of one function: which
// contract-relevant effects some path through it (and its callees) can
// perform.
type callFacts struct {
	acquire bool // e.CompleteLock
	block   bool // e.BlockLocal / e.SuspendGlobal / e.SpinGlobal
	release bool // holder/busy cleared, delete(), held-list shrink, CompleteLock, Grant
}

type protoProg struct {
	pass       *Pass
	funcs      map[string]*srcFunc
	summaries  map[string]*callFacts
	inProgress map[string]bool
	tryChecked map[string]bool
}

// funcKey names a function by package path, receiver type and name, so
// the source declaration of a callee is found even when the caller's
// type info references the export-data view of the callee's package
// (distinct *types.Func objects for the same function).
func funcKey(fn *types.Func) string {
	key := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			key = named.Obj().Name() + "." + key
		}
	}
	if fn.Pkg() != nil {
		key = fn.Pkg().Path() + "." + key
	}
	return key
}

// engineService returns the method name when call is a call to one of
// the sim.Engine scheduling services, "" otherwise.
func engineService(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != protoSimPath {
		return ""
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() == nil {
		return ""
	}
	switch fn.Name() {
	case "CompleteLock", "BlockLocal", "SuspendGlobal", "SpinGlobal", "Grant", "MakeReady", "SpawnAgent":
		return fn.Name()
	}
	return ""
}

// isReleaseStmt recognizes the syntactic release/transfer actions: a
// holder or queue field cleared to nil/false (selector or index LHS), a
// delete() of bookkeeping, or the shrinking-append removal idiom.
func isReleaseStmt(info *types.Info, n ast.Node) bool {
	switch n := n.(type) {
	case *ast.AssignStmt:
		if len(n.Rhs) == 1 {
			if id, ok := n.Rhs[0].(*ast.Ident); ok && (id.Name == "nil" || id.Name == "false") {
				for _, lhs := range n.Lhs {
					switch lhs.(type) {
					case *ast.SelectorExpr, *ast.IndexExpr:
						return true
					}
				}
			}
		}
	case *ast.CallExpr:
		if fn, ok := info.Uses[identOf(n.Fun)].(*types.Builtin); ok {
			switch fn.Name() {
			case "delete":
				return true
			case "append":
				return isShrinkingAppend(n)
			}
		}
	}
	return false
}

func identOf(e ast.Expr) *ast.Ident {
	id, _ := e.(*ast.Ident)
	return id
}

// inspectNode walks one CFG node the way the shallow CFG demands:
// function literals are separate execution contexts and a SelectStmt
// node is only a marker (its clause bodies are their own blocks).
func inspectNode(n ast.Node, fn func(ast.Node) bool) {
	if _, ok := n.(*ast.SelectStmt); ok {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		return fn(m)
	})
}

// summary computes (memoized, cycle-safe) the transitive may-facts of
// fn. Functions without loadable source contribute nothing.
func (pr *protoProg) summary(fn *types.Func) callFacts {
	key := funcKey(fn)
	if s, ok := pr.summaries[key]; ok {
		return *s
	}
	if pr.inProgress[key] {
		return callFacts{}
	}
	sf := pr.funcs[key]
	if sf == nil {
		return callFacts{}
	}
	pr.inProgress[key] = true
	defer delete(pr.inProgress, key)
	var facts callFacts
	inspectNode(sf.decl.Body, func(n ast.Node) bool {
		if isReleaseStmt(sf.pkg.Info, n) {
			facts.release = true
		}
		if call, ok := n.(*ast.CallExpr); ok {
			switch engineService(sf.pkg.Info, call) {
			case "CompleteLock":
				facts.acquire, facts.release = true, true
			case "BlockLocal", "SuspendGlobal", "SpinGlobal":
				facts.block = true
			case "Grant":
				facts.release = true
			case "":
				if callee := calleeFunc(sf.pkg.Info, call); callee != nil && funcKey(callee) != key {
					sub := pr.summary(callee)
					facts.acquire = facts.acquire || sub.acquire
					facts.block = facts.block || sub.block
					facts.release = facts.release || sub.release
				}
			}
		}
		return true
	})
	pr.summaries[key] = &facts
	return facts
}

// pathFact is the per-path may-state for the TryLock and Unlock checks.
// nil marks an unreachable point; facts union at joins.
type pathFact struct {
	acquired, blocked, released bool
}

func joinPathFacts(dst, src *pathFact) *pathFact {
	if src == nil {
		return dst
	}
	if dst == nil {
		c := *src
		return &c
	}
	return &pathFact{
		acquired: dst.acquired || src.acquired,
		blocked:  dst.blocked || src.blocked,
		released: dst.released || src.released,
	}
}

func pathFactsEqual(a, b *pathFact) bool {
	if a == nil || b == nil {
		return a == b
	}
	return *a == *b
}

// applyPathNode advances the fact over one CFG node.
func (pr *protoProg) applyPathNode(pkg *Package, n ast.Node, st *pathFact) {
	inspectNode(n, func(m ast.Node) bool {
		if isReleaseStmt(pkg.Info, m) {
			st.released = true
		}
		if call, ok := m.(*ast.CallExpr); ok {
			switch engineService(pkg.Info, call) {
			case "CompleteLock":
				st.acquired, st.released = true, true
			case "BlockLocal", "SuspendGlobal", "SpinGlobal":
				st.blocked = true
			case "Grant":
				st.released = true
			case "":
				if callee := calleeFunc(pkg.Info, call); callee != nil {
					sub := pr.summary(callee)
					st.acquired = st.acquired || sub.acquire
					st.blocked = st.blocked || sub.block
					st.released = st.released || sub.release
				}
			}
		}
		return true
	})
}

// runPathAnalysis runs the shared may-dataflow over body and calls sink
// for every live block with its entry fact (replay the nodes yourself).
func (pr *protoProg) runPathAnalysis(pkg *Package, body *ast.BlockStmt, sink func(cfg *CFG, blk *Block, entry *pathFact)) {
	cfg := NewCFG(body)
	df := Dataflow[*pathFact]{
		CFG:    cfg,
		Entry:  &pathFact{},
		Bottom: func() *pathFact { return nil },
		Join:   joinPathFacts,
		Equal:  pathFactsEqual,
		Transfer: func(blk *Block, in *pathFact) *pathFact {
			st := *in
			for _, n := range blk.Nodes {
				pr.applyPathNode(pkg, n, &st)
			}
			return &st
		},
	}
	in := df.Run()
	for _, blk := range cfg.Blocks {
		if blk.Live && in[blk.Index] != nil {
			entry := *in[blk.Index]
			sink(cfg, blk, &entry)
		}
	}
}

// checkTryFunc verifies the TryLock return contract for fn and,
// recursively, for every source function it delegates its result to.
func (pr *protoProg) checkTryFunc(fn *types.Func) {
	key := funcKey(fn)
	if pr.tryChecked[key] {
		return
	}
	pr.tryChecked[key] = true
	sf := pr.funcs[key]
	if sf == nil {
		return // body not in the loaded source set: trusted
	}
	name := fn.Name()
	pr.runPathAnalysis(sf.pkg, sf.decl.Body, func(cfg *CFG, blk *Block, st *pathFact) {
		for _, n := range blk.Nodes {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				pr.applyPathNode(sf.pkg, n, st)
				continue
			}
			if len(ret.Results) != 1 {
				continue
			}
			res := ret.Results[0]
			pr.applyPathNode(sf.pkg, res, st)
			switch verdict := tryReturnKind(sf.pkg.Info, res); verdict {
			case "true":
				if !st.acquired {
					pr.pass.Reportf(ret.Pos(), "%s returns true without completing the acquisition (no CompleteLock on this path)", name)
				}
			case "false":
				if !st.blocked {
					pr.pass.Reportf(ret.Pos(), "%s returns false without blocking the requester (no BlockLocal, SuspendGlobal or SpinGlobal on this path)", name)
				}
			case "call":
				if callee := calleeFunc(sf.pkg.Info, res.(*ast.CallExpr)); callee != nil {
					pr.checkTryFunc(callee)
				}
			}
		}
	})
}

// tryReturnKind classifies the returned expression: a constant true or
// false, a delegating call, or something the analysis trusts.
func tryReturnKind(info *types.Info, e ast.Expr) string {
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		if tv.Value.String() == "true" {
			return "true"
		}
		if tv.Value.String() == "false" {
			return "false"
		}
	}
	if _, ok := e.(*ast.CallExpr); ok {
		return "call"
	}
	return ""
}

// checkUnlock verifies the release contract: every exit path of Unlock
// performs at least one release or transfer action.
func (pr *protoProg) checkUnlock(pkg *Package, decl *ast.FuncDecl) {
	pr.runPathAnalysis(pkg, decl.Body, func(cfg *CFG, blk *Block, st *pathFact) {
		for _, n := range blk.Nodes {
			if ret, ok := n.(*ast.ReturnStmt); ok {
				if !st.released {
					pr.pass.Reportf(ret.Pos(), "Unlock returns without releasing or transferring the semaphore on this path")
				}
				continue
			}
			pr.applyPathNode(pkg, n, st)
		}
		if blk == cfg.FallsOff && !st.released {
			pr.pass.Reportf(decl.Name.Pos(), "Unlock can fall off the end without releasing or transferring the semaphore")
		}
	})
}

// grantFact maps the printed Grant argument to the position of the
// unmatched Grant call. nil marks an unreachable point.
type grantFact map[string]token.Pos

func joinGrantFacts(dst, src grantFact) grantFact {
	if src == nil {
		return dst
	}
	if dst == nil {
		return cloneGrantFact(src)
	}
	merged := cloneGrantFact(dst)
	for k, v := range src {
		if cur, ok := merged[k]; !ok || v < cur {
			merged[k] = v
		}
	}
	return merged
}

func cloneGrantFact(f grantFact) grantFact {
	c := grantFact{}
	for k, v := range f {
		c[k] = v
	}
	return c
}

func grantFactsEqual(a, b grantFact) bool {
	if a == nil || b == nil {
		return a != nil == (b != nil)
	}
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if w, ok := b[k]; !ok || v != w {
			return false
		}
	}
	return true
}

// checkGrantPairing reports Grant calls not matched by a MakeReady of
// the same job on every subsequent path. Functions that spawn agents
// are exempt: SpawnAgent schedules the surrogate itself.
func (pr *protoProg) checkGrantPairing(pkg *Package, decl *ast.FuncDecl) {
	hasGrant, hasSpawn := false, false
	inspectNode(decl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			switch engineService(pkg.Info, call) {
			case "Grant":
				hasGrant = true
			case "SpawnAgent":
				hasSpawn = true
			}
		}
		return true
	})
	if !hasGrant || hasSpawn {
		return
	}

	apply := func(n ast.Node, st grantFact) {
		inspectNode(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			switch engineService(pkg.Info, call) {
			case "Grant":
				st[types.ExprString(call.Args[0])] = call.Pos()
			case "MakeReady":
				delete(st, types.ExprString(call.Args[0]))
			}
			return true
		})
	}

	cfg := NewCFG(decl.Body)
	df := Dataflow[grantFact]{
		CFG:    cfg,
		Entry:  grantFact{},
		Bottom: func() grantFact { return nil },
		Join:   joinGrantFacts,
		Equal:  grantFactsEqual,
		Transfer: func(blk *Block, in grantFact) grantFact {
			st := cloneGrantFact(in)
			for _, n := range blk.Nodes {
				apply(n, st)
			}
			return st
		},
	}
	in := df.Run()

	reported := map[token.Pos]bool{}
	leak := func(st grantFact) {
		keys := make([]string, 0, len(st))
		for k := range st {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if pos := st[k]; !reported[pos] {
				reported[pos] = true
				pr.pass.Reportf(pos, "Grant(%s) is not always followed by MakeReady(%s); a granted job that is never woken deadlocks its waiters", k, k)
			}
		}
	}
	for _, blk := range cfg.Blocks {
		if !blk.Live || in[blk.Index] == nil {
			continue
		}
		st := cloneGrantFact(in[blk.Index])
		for _, n := range blk.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				leak(st)
				continue
			}
			apply(n, st)
		}
		if blk == cfg.FallsOff {
			leak(st)
		}
	}
}

// checkOnFinish requires OnFinish to delete the finished job from every
// job-keyed map field of the implementor. The engine routes overload
// aborts through OnFinish, so a surviving entry leaks per aborted job.
func (pr *protoProg) checkOnFinish(pkg *Package, impl *types.Named, decl *ast.FuncDecl) {
	st, ok := impl.Underlying().(*types.Struct)
	if !ok {
		return
	}
	var jobMaps []string
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if m, ok := f.Type().Underlying().(*types.Map); ok && isSimJobPtr(m.Key()) {
			jobMaps = append(jobMaps, f.Name())
		}
	}
	if len(jobMaps) == 0 {
		return
	}
	cleared := map[string]bool{}
	seen := map[string]bool{}
	var walk func(pkg *Package, body *ast.BlockStmt)
	walk = func(pkg *Package, body *ast.BlockStmt) {
		inspectNode(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if bi, ok := pkg.Info.Uses[identOf(call.Fun)].(*types.Builtin); ok && bi.Name() == "delete" && len(call.Args) > 0 {
				if sel, ok := call.Args[0].(*ast.SelectorExpr); ok {
					cleared[sel.Sel.Name] = true
				}
				return true
			}
			if callee := calleeFunc(pkg.Info, call); callee != nil && !seen[funcKey(callee)] {
				seen[funcKey(callee)] = true
				if sf := pr.funcs[funcKey(callee)]; sf != nil {
					walk(sf.pkg, sf.decl.Body)
				}
			}
			return true
		})
	}
	walk(pkg, decl.Body)
	for _, name := range jobMaps {
		if !cleared[name] {
			pr.pass.Reportf(decl.Name.Pos(), "OnFinish does not delete from job-keyed map field %s; an overload abort leaks the aborted job's state", name)
		}
	}
}

func isSimJobPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Job" && obj.Pkg() != nil && obj.Pkg().Path() == protoSimPath
}

// checkPackageState flags mutable package-level state in a package that
// declares a Protocol implementation. Blank vars (interface assertions)
// are exempt; constants are immutable and fine.
func (pr *protoProg) checkPackageState(pkg *Package) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if name.Name == "_" {
						continue
					}
					pr.pass.Reportf(name.Pos(), "protocol package declares mutable package-level state: var %s; protocol state must live on the Protocol value", name.Name)
				}
			}
		}
	}
}
