// Package lint is a domain-specific static-analysis suite that proves,
// at compile time, the two contracts every result in this repository
// rests on: the deterministic core really is deterministic (PR 1's
// byte-identical sweeps and PR 3's conformance oracles assume it), and
// the shared-memory substrate honors strict lock/wakeup discipline.
// Runtime tests can only catch a nondeterministic code path when it
// happens to flake; these analyzers reject the whole bug class before a
// single trace is produced.
//
// The suite is intentionally self-contained: analyzers are written
// against the standard library's go/ast and go/types only (the
// canonical golang.org/x/tools/go/analysis framework is mirrored in
// miniature by Analyzer/Pass/Diagnostic), and packages are loaded
// offline from compiler export data produced by `go list -export`.
//
// Findings are suppressed line-by-line with
//
//	//rtlint:allow <analyzer> <justification>
//
// placed on the offending line or the line directly above it. The
// analyzer name may be "all". A justification is not parsed but is
// expected by convention; suppressions without one do not survive
// review.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer is one static check. Run inspects a single type-checked
// package and reports findings through the Pass; RunProgram, when set
// instead, runs once over every package in scope (pass.Pkgs), which is
// how the interprocedural analyzers (protocontract, lockorder) see
// cross-package call and delegation edges.
type Analyzer struct {
	// Name is the identifier used in output and in //rtlint:allow
	// suppression comments.
	Name string
	// Doc is a one-paragraph description of the contract enforced.
	Doc string
	// Run performs the check on pass.Pkg.
	Run func(pass *Pass)
	// RunProgram, when non-nil, takes precedence over Run and performs
	// one whole-program check on pass.Pkgs (pass.Pkg is nil).
	RunProgram func(pass *Pass)
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the finding the way compilers do, so editors and CI
// annotations pick positions up for free.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// A Pass carries one analyzer's run over one package (per-package
// analyzers, Pkg set) or over the whole scoped package set (program
// analyzers, Pkg nil). Pkgs and Fset are always set; every package in
// one Load call shares the one file set.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Pkgs     []*Package
	Fset     *token.FileSet

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies each analyzer to each package, filters findings through
// the //rtlint:allow suppression comments, and returns the survivors
// sorted by position. Packages that failed to type-check are analyzed
// anyway (the type info is partial); load-time errors are surfaced by
// the loader, not here.
func Run(pkgs []*Package, analyzers ...*Analyzer) []Diagnostic {
	if len(pkgs) == 0 {
		return nil
	}
	allow := allowSet{}
	for _, pkg := range pkgs {
		collectSuppressions(allow, pkg, nil)
	}
	var out []Diagnostic
	keep := func(pass *Pass) {
		for _, d := range pass.diags {
			if !allow.covers(d) {
				out = append(out, d)
			}
		}
	}
	for _, a := range analyzers {
		if a.RunProgram != nil {
			pass := &Pass{Analyzer: a, Pkgs: pkgs, Fset: pkgs[0].Fset}
			a.RunProgram(pass)
			keep(pass)
			continue
		}
		for _, pkg := range pkgs {
			pass := &Pass{Analyzer: a, Pkg: pkg, Pkgs: pkgs, Fset: pkg.Fset}
			a.Run(pass)
			keep(pass)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// allowSet maps file -> line -> analyzer names allowed there.
type allowSet map[string]map[int]map[string]bool

func (s allowSet) covers(d Diagnostic) bool {
	lines := s[d.Pos.Filename]
	if lines == nil {
		return false
	}
	// A suppression covers its own line and the line directly below it
	// (i.e. the comment sits on the finding's line or just above).
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		if names := lines[line]; names != nil && (names[d.Analyzer] || names["all"]) {
			return true
		}
	}
	return false
}

// A Suppression is one //rtlint:allow comment, as surfaced by the
// `rtvet -suppressions` audit: where it is, which analyzer it silences,
// and the justification text after the analyzer name.
type Suppression struct {
	Pos           token.Position
	Analyzer      string
	Justification string
}

// Suppressions collects every //rtlint:allow comment across pkgs in
// position order, for the audit mode. Comments with no analyzer name at
// all are ignored here exactly as they are ignored by the filter.
func Suppressions(pkgs []*Package) []Suppression {
	var out []Suppression
	for _, pkg := range pkgs {
		collectSuppressions(nil, pkg, &out)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return out
}

// collectSuppressions scans one package's //rtlint:allow comments into
// the filter set (when set is non-nil) and/or the audit list (when list
// is non-nil).
func collectSuppressions(set allowSet, pkg *Package, list *[]Suppression) {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//rtlint:allow")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				if set != nil {
					lines := set[pos.Filename]
					if lines == nil {
						lines = map[int]map[string]bool{}
						set[pos.Filename] = lines
					}
					if lines[pos.Line] == nil {
						lines[pos.Line] = map[string]bool{}
					}
					lines[pos.Line][fields[0]] = true
				}
				if list != nil {
					*list = append(*list, Suppression{
						Pos:           pos,
						Analyzer:      fields[0],
						Justification: strings.TrimSpace(strings.Join(fields[1:], " ")),
					})
				}
			}
		}
	}
}

// inspectFuncs calls fn for every function or method declaration with a
// body in the package, giving analyzers a per-function scope without
// re-deriving it.
func inspectFuncs(pkg *Package, fn func(decl *ast.FuncDecl)) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}
