// Package lint is a domain-specific static-analysis suite that proves,
// at compile time, the two contracts every result in this repository
// rests on: the deterministic core really is deterministic (PR 1's
// byte-identical sweeps and PR 3's conformance oracles assume it), and
// the shared-memory substrate honors strict lock/wakeup discipline.
// Runtime tests can only catch a nondeterministic code path when it
// happens to flake; these analyzers reject the whole bug class before a
// single trace is produced.
//
// The suite is intentionally self-contained: analyzers are written
// against the standard library's go/ast and go/types only (the
// canonical golang.org/x/tools/go/analysis framework is mirrored in
// miniature by Analyzer/Pass/Diagnostic), and packages are loaded
// offline from compiler export data produced by `go list -export`.
//
// Findings are suppressed line-by-line with
//
//	//rtlint:allow <analyzer> <justification>
//
// placed on the offending line or the line directly above it. The
// analyzer name may be "all". A justification is not parsed but is
// expected by convention; suppressions without one do not survive
// review.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer is one static check. Run inspects a single type-checked
// package and reports findings through the Pass.
type Analyzer struct {
	// Name is the identifier used in output and in //rtlint:allow
	// suppression comments.
	Name string
	// Doc is a one-paragraph description of the contract enforced.
	Doc string
	// Run performs the check on pass.Pkg.
	Run func(pass *Pass)
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the finding the way compilers do, so editors and CI
// annotations pick positions up for free.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// A Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies each analyzer to each package, filters findings through
// the //rtlint:allow suppression comments, and returns the survivors
// sorted by position. Packages that failed to type-check are analyzed
// anyway (the type info is partial); load-time errors are surfaced by
// the loader, not here.
func Run(pkgs []*Package, analyzers ...*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		allow := suppressions(pkg)
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg}
			a.Run(pass)
			for _, d := range pass.diags {
				if allow.covers(d) {
					continue
				}
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// allowSet maps file -> line -> analyzer names allowed there.
type allowSet map[string]map[int]map[string]bool

func (s allowSet) covers(d Diagnostic) bool {
	lines := s[d.Pos.Filename]
	if lines == nil {
		return false
	}
	// A suppression covers its own line and the line directly below it
	// (i.e. the comment sits on the finding's line or just above).
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		if names := lines[line]; names != nil && (names[d.Analyzer] || names["all"]) {
			return true
		}
	}
	return false
}

// suppressions collects every //rtlint:allow comment in the package.
func suppressions(pkg *Package) allowSet {
	set := allowSet{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//rtlint:allow")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := set[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					set[pos.Filename] = lines
				}
				if lines[pos.Line] == nil {
					lines[pos.Line] = map[string]bool{}
				}
				lines[pos.Line][fields[0]] = true
			}
		}
	}
	return set
}

// inspectFuncs calls fn for every function or method declaration with a
// body in the package, giving analyzers a per-function scope without
// re-deriving it.
func inspectFuncs(pkg *Package, fn func(decl *ast.FuncDecl)) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}
