package hybrid_test

import (
	"reflect"
	"testing"

	"mpcp/internal/core"
	"mpcp/internal/dpcp"
	"mpcp/internal/hybrid"
	"mpcp/internal/sim"
	"mpcp/internal/task"
	"mpcp/internal/trace"
	"mpcp/internal/workload"
)

func runLog(t *testing.T, sys *task.System, p sim.Protocol) *trace.Log {
	t.Helper()
	log := trace.New()
	e, err := sim.New(sys, p, sim.Config{Trace: log})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return log
}

// TestAllSharedEquivalentToMPCP: with no remote semaphores the hybrid
// protocol must reproduce the shared-memory protocol's trace event for
// event (inherit events may differ in bookkeeping order but the
// execution matrix must be identical).
func TestAllSharedEquivalentToMPCP(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		cfg := workload.Default(seed)
		cfg.UtilPerProc = 0.5
		sys, err := workload.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		h := runLog(t, sys, hybrid.New(hybrid.Options{}))
		m := runLog(t, sys, core.New(core.Options{}))
		if !reflect.DeepEqual(h.Execs, m.Execs) {
			t.Errorf("seed %d: hybrid(all-shm) execution differs from mpcp", seed)
		}
	}
}

// TestAllRemoteEquivalentToDPCP: with every global semaphore remote and
// the same assignment, the hybrid protocol must reproduce DPCP's
// execution matrix.
func TestAllRemoteEquivalentToDPCP(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		cfg := workload.Default(seed)
		cfg.UtilPerProc = 0.5
		sys, err := workload.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		remote := make(map[task.SemID]bool)
		assign := make(map[task.SemID]task.ProcID)
		for _, sem := range sys.Sems {
			if sem.Global {
				remote[sem.ID] = true
				assign[sem.ID] = sys.AccessorProcs(sem.ID)[0]
			}
		}
		h := runLog(t, sys, hybrid.New(hybrid.Options{Remote: remote, Assign: assign}))
		d := runLog(t, sys, dpcp.New(dpcp.Options{Assign: assign}))
		if !reflect.DeepEqual(h.Execs, d.Execs) {
			t.Errorf("seed %d: hybrid(all-remote) execution differs from dpcp", seed)
		}
	}
}
