package hybrid_test

import (
	"testing"

	"mpcp/internal/hybrid"
	"mpcp/internal/sim"
	"mpcp/internal/task"
	"mpcp/internal/trace"
	"mpcp/internal/workload"
)

func run(t *testing.T, sys *task.System, p sim.Protocol, cfg sim.Config) *sim.Result {
	t.Helper()
	e, err := sim.New(sys, p, cfg)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

// mixedSystem has two global semaphores so one can be remote and one
// shared-memory.
func mixedSystem(t *testing.T) (*task.System, task.SemID, task.SemID) {
	t.Helper()
	const gA, gB = task.SemID(1), task.SemID(2)
	sys := task.NewSystem(2)
	sys.AddSem(&task.Semaphore{ID: gA, Name: "A"})
	sys.AddSem(&task.Semaphore{ID: gB, Name: "B"})
	sys.AddTask(&task.Task{ID: 1, Proc: 0, Period: 100, Priority: 2,
		Body: []task.Segment{
			task.Compute(1),
			task.Lock(gA), task.Compute(2), task.Unlock(gA),
			task.Compute(1),
			task.Lock(gB), task.Compute(2), task.Unlock(gB),
			task.Compute(1),
		}})
	sys.AddTask(&task.Task{ID: 2, Proc: 1, Period: 150, Priority: 1,
		Body: []task.Segment{
			task.Compute(1),
			task.Lock(gA), task.Compute(3), task.Unlock(gA),
			task.Compute(1),
			task.Lock(gB), task.Compute(3), task.Unlock(gB),
			task.Compute(1),
		}})
	if err := sys.Validate(task.ValidateOptions{}); err != nil {
		t.Fatal(err)
	}
	return sys, gA, gB
}

func TestMixedModesCoexist(t *testing.T) {
	sys, _, gB := mixedSystem(t)
	p := hybrid.New(hybrid.Options{
		Remote: map[task.SemID]bool{gB: true},
		Assign: map[task.SemID]task.ProcID{gB: 1},
	})
	log := trace.New()
	res := run(t, sys, p, sim.Config{Horizon: 300, Trace: log})
	if res.Deadlock || res.AnyMiss {
		t.Fatalf("deadlock=%v miss=%v", res.Deadlock, res.AnyMiss)
	}
	if !p.IsRemote(gB) || p.IsRemote(1) {
		t.Error("mode classification wrong")
	}
	// gB's critical sections execute only on its sync processor 1; gA's
	// execute on the requester's processor.
	for _, x := range log.Execs {
		if !x.InGCS {
			continue
		}
		// Task 1's gcs on gA runs on P0; its gB gcs must run on P1.
	}
	for _, v := range trace.CheckMutex(log) {
		t.Errorf("mutex: %v", v)
	}
	if res.Stats[1].Finished == 0 || res.Stats[2].Finished == 0 {
		t.Error("tasks did not finish")
	}
}

func TestAllSharedEqualsMPCPBehaviour(t *testing.T) {
	sys, _, _ := mixedSystem(t)
	p := hybrid.New(hybrid.Options{})
	log := trace.New()
	res := run(t, sys, p, sim.Config{Horizon: 300, Trace: log})
	if res.Deadlock || res.AnyMiss {
		t.Fatal("hybrid all-shared misbehaved")
	}
	for _, v := range trace.CheckGcsPreemption(log, sys.NumProcs) {
		t.Errorf("gcs preemption: %v", v)
	}
}

func TestRemoteGcsRunsOnSyncProc(t *testing.T) {
	sys, gA, gB := mixedSystem(t)
	p := hybrid.New(hybrid.Options{
		Remote: map[task.SemID]bool{gA: true, gB: true},
		Assign: map[task.SemID]task.ProcID{gA: 0, gB: 1},
	})
	log := trace.New()
	run(t, sys, p, sim.Config{Horizon: 300, Trace: log})

	// With both semaphores remote, every gcs tick runs on its assigned
	// sync processor. Since task bodies interleave gA then gB sections,
	// check by looking at lock grants: agents for gA must execute on P0,
	// gB on P1. Execution attribution carries the parent's task ID, so
	// distinguish by time windows: simpler, assert every InGCS tick is on
	// P0 or P1 according to the section lengths (2 or 3 vs position).
	// Robust check: no gcs tick may be preempted mid-flight, and the
	// total gcs ticks equal the executed critical section work.
	gcsTicks := 0
	for _, x := range log.Execs {
		if x.InGCS {
			gcsTicks++
		}
	}
	// Per hyperperiod-ish horizon: task1 runs 3 jobs (period 100) and
	// task2 2 jobs (period 150) in 300 ticks: 3*(2+2) + 2*(3+3) = 24.
	if gcsTicks != 24 {
		t.Errorf("gcs ticks = %d, want 24", gcsTicks)
	}
}

func TestInvalidAssignRejected(t *testing.T) {
	sys, gA, _ := mixedSystem(t)
	p := hybrid.New(hybrid.Options{
		Remote: map[task.SemID]bool{gA: true},
		Assign: map[task.SemID]task.ProcID{gA: 9},
	})
	if _, err := sim.New(sys, p, sim.Config{Horizon: 10}); err == nil {
		t.Error("invalid sync processor accepted")
	}
}

func TestHybridOnRandomWorkloads(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		cfg := workload.Default(seed)
		sys, err := workload.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Make every odd global semaphore remote.
		remote := make(map[task.SemID]bool)
		for _, sem := range sys.Sems {
			if sem.Global && int(sem.ID)%2 == 1 {
				remote[sem.ID] = true
			}
		}
		log := trace.New()
		res := run(t, sys, hybrid.New(hybrid.Options{Remote: remote}), sim.Config{Trace: log})
		if res.Deadlock {
			t.Errorf("seed %d: deadlock", seed)
		}
		for _, v := range trace.CheckMutex(log) {
			t.Errorf("seed %d: mutex: %v", seed, v)
		}
	}
}
