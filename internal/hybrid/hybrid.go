// Package hybrid implements the protocol variation the paper's
// conclusion proposes: "the shared memory and message-based protocols can
// be mixed to reduce critical blocking factors and/or support nested
// critical sections." Each global semaphore is individually configured to
// be handled either in place (shared-memory MPCP rules: priority-queued
// atomic acquisition, gcs at P_G + P_h on the requester's processor) or
// remotely (message-based DPCP rules: the gcs executes as an agent on a
// synchronization processor at the semaphore's global ceiling). Local
// semaphores use the uniprocessor priority ceiling protocol as always.
package hybrid

import (
	"fmt"

	"mpcp/internal/ceiling"
	"mpcp/internal/pcp"
	"mpcp/internal/pqueue"
	"mpcp/internal/sim"
	"mpcp/internal/task"
)

// Options configures which global semaphores are remote and where their
// agents run.
type Options struct {
	// Remote lists the global semaphores handled message-based. All other
	// global semaphores use the shared-memory rules.
	Remote map[task.SemID]bool

	// Assign maps remote semaphores to synchronization processors;
	// unset entries default to the lowest-numbered accessor.
	Assign map[task.SemID]task.ProcID
}

// Protocol is the mixed shared-memory / message-based protocol.
type Protocol struct {
	opts Options

	tbl    *ceiling.Table
	locals map[task.ProcID]*pcp.Local

	shm    map[task.SemID]*shmSem
	remote map[task.SemID]*remoteSem
	csAt   map[csKey]task.CriticalSection

	prioStack map[*sim.Job][]int
}

type csKey struct {
	task  task.ID
	start int
}

type shmSem struct {
	holder  *sim.Job
	waiters pqueue.Queue[*sim.Job]
}

type remoteSem struct {
	proc    task.ProcID
	busy    bool
	waiters pqueue.Queue[*sim.Job]
}

var _ sim.Protocol = (*Protocol)(nil)

// New returns the hybrid protocol.
func New(opts Options) *Protocol { return &Protocol{opts: opts} }

// Name implements sim.Protocol.
func (p *Protocol) Name() string { return "hybrid" }

// Init implements sim.Protocol.
func (p *Protocol) Init(e *sim.Engine) error {
	sys := e.Sys()
	p.tbl = ceiling.Compute(sys, false)
	p.shm = make(map[task.SemID]*shmSem)
	p.remote = make(map[task.SemID]*remoteSem)
	p.csAt = make(map[csKey]task.CriticalSection)
	p.prioStack = make(map[*sim.Job][]int)

	for _, sem := range sys.Sems {
		if !sem.Global || len(sys.TasksUsing(sem.ID)) == 0 {
			continue
		}
		if !p.opts.Remote[sem.ID] {
			p.shm[sem.ID] = &shmSem{}
			continue
		}
		proc, ok := p.opts.Assign[sem.ID]
		if !ok {
			proc = sys.AccessorProcs(sem.ID)[0]
		}
		if proc < 0 || int(proc) >= sys.NumProcs {
			return fmt.Errorf("hybrid: semaphore %d assigned to invalid processor %d", sem.ID, proc)
		}
		p.remote[sem.ID] = &remoteSem{proc: proc}
	}

	for _, t := range sys.Tasks {
		for _, cs := range sys.CriticalSections(t.ID) {
			if !cs.Global {
				continue
			}
			if cs.Nested || !cs.Outermost {
				return fmt.Errorf("hybrid: task %d has a nested global critical section on semaphore %d", t.ID, cs.Sem)
			}
			p.csAt[csKey{task: t.ID, start: cs.StartSeg}] = cs
		}
	}

	p.locals = make(map[task.ProcID]*pcp.Local, sys.NumProcs)
	for i := 0; i < sys.NumProcs; i++ {
		proc := task.ProcID(i)
		p.locals[proc] = pcp.NewLocal(sys, proc, p.setLocalPrio)
	}
	return nil
}

func (p *Protocol) setLocalPrio(e *sim.Engine, j *sim.Job, prio int) {
	if j.GCS > 0 {
		return
	}
	e.SetEffPrio(j, prio)
}

// Ceilings exposes the priority structure computed at Init.
func (p *Protocol) Ceilings() *ceiling.Table { return p.tbl }

// IsRemote reports how semaphore s is handled.
func (p *Protocol) IsRemote(s task.SemID) bool {
	_, ok := p.remote[s]
	return ok
}

// OnRelease implements sim.Protocol.
func (p *Protocol) OnRelease(e *sim.Engine, j *sim.Job) {
	e.SetEffPrio(j, j.BasePrio)
	e.MakeReady(j)
}

// TryLock implements sim.Protocol.
func (p *Protocol) TryLock(e *sim.Engine, j *sim.Job, s task.SemID) bool {
	if g, ok := p.shm[s]; ok {
		return p.tryLockShm(e, j, s, g)
	}
	if r, ok := p.remote[s]; ok {
		return p.tryLockRemote(e, j, s, r)
	}
	return p.locals[j.Proc].TryLock(e, j, s)
}

func (p *Protocol) tryLockShm(e *sim.Engine, j *sim.Job, s task.SemID, g *shmSem) bool {
	if g.holder == nil {
		p.enterGcs(e, j, s, j.EffPrio)
		g.holder = j
		return true
	}
	g.waiters.Push(j, j.BasePrio)
	p.prioStack[j] = append(p.prioStack[j], j.EffPrio)
	e.SuspendGlobal(j, s)
	return false
}

func (p *Protocol) enterGcs(e *sim.Engine, j *sim.Job, s task.SemID, prev int) {
	p.prioStack[j] = append(p.prioStack[j], prev)
	e.CompleteLock(j, s)
	prio := p.tbl.GcsPrio[ceiling.Key{Task: j.Task.ID, Sem: s}]
	if prio > j.EffPrio {
		e.SetEffPrio(j, prio)
	}
}

func (p *Protocol) tryLockRemote(e *sim.Engine, j *sim.Job, s task.SemID, r *remoteSem) bool {
	cs, ok := p.csAt[csKey{task: j.Task.ID, start: j.PC}]
	if !ok {
		e.SuspendGlobal(j, s)
		return false
	}
	e.SuspendGlobal(j, s)
	if r.busy {
		r.waiters.Push(j, j.BasePrio)
		return false
	}
	r.busy = true
	p.startAgent(e, j, cs, r)
	return false
}

func (p *Protocol) startAgent(e *sim.Engine, parent *sim.Job, cs task.CriticalSection, r *remoteSem) {
	interior := parent.Body[cs.StartSeg+1 : cs.EndSeg]
	prio := p.tbl.GlobalCeil[cs.Sem]
	agent := e.SpawnAgent(parent, interior, r.proc, prio, func(agent *sim.Job) {
		p.agentDone(e, agent, cs, r)
	})
	parent.ActiveAgent = agent
	e.Grant(parent, cs.Sem, prio)
}

func (p *Protocol) agentDone(e *sim.Engine, agent *sim.Job, cs task.CriticalSection, r *remoteSem) {
	parent := agent.Parent
	parent.ActiveAgent = nil
	e.JumpTo(parent, cs.EndSeg+1)
	e.SetEffPrio(parent, parent.BasePrio)
	e.MakeReady(parent)
	p.locals[parent.Proc].Recompute(e)

	next, ok := r.waiters.Pop()
	if !ok {
		r.busy = false
		return
	}
	nextCS, found := p.csAt[csKey{task: next.Task.ID, start: next.PC}]
	if !found {
		r.busy = false
		return
	}
	p.startAgent(e, next, nextCS, r)
}

// Unlock implements sim.Protocol.
func (p *Protocol) Unlock(e *sim.Engine, j *sim.Job, s task.SemID) {
	g, isShm := p.shm[s]
	if !isShm {
		if _, isRemote := p.remote[s]; isRemote {
			//rtlint:allow protocontract remote sections release through the agent's completion in agentDone
			return
		}
		p.locals[j.Proc].Unlock(e, j, s)
		return
	}

	if st := p.prioStack[j]; len(st) > 0 {
		prev := st[len(st)-1]
		p.prioStack[j] = st[:len(st)-1]
		if len(p.prioStack[j]) == 0 {
			delete(p.prioStack, j)
		}
		e.SetEffPrio(j, prev)
	} else {
		e.SetEffPrio(j, j.BasePrio)
	}
	p.locals[j.Proc].Recompute(e)

	next, ok := g.waiters.Pop()
	if !ok {
		g.holder = nil
		return
	}
	g.holder = next
	prev := next.BasePrio
	if st := p.prioStack[next]; len(st) > 0 {
		prev = st[len(st)-1]
		p.prioStack[next] = st[:len(st)-1]
	}
	p.enterGcs(e, next, s, prev)
	e.Grant(next, s, next.EffPrio)
	e.MakeReady(next)
}

// OnFinish implements sim.Protocol.
func (p *Protocol) OnFinish(e *sim.Engine, j *sim.Job) {
	delete(p.prioStack, j)
	p.locals[j.Proc].DropJob(j)
	p.locals[j.Proc].Recompute(e)
}
