package mpcp_test

import (
	"strings"
	"testing"

	"mpcp"
)

func TestExperimentsEnumeration(t *testing.T) {
	all := mpcp.Experiments()
	if len(all) != 19 {
		t.Fatalf("experiments = %d, want 19", len(all))
	}
	if all[0].ID != "E1" || all[len(all)-1].ID != "E19" {
		t.Errorf("order wrong: %s..%s", all[0].ID, all[len(all)-1].ID)
	}
}

func TestVerifyReproductionGate(t *testing.T) {
	if testing.Short() {
		t.Skip("full reproduction skipped in short mode")
	}
	var out strings.Builder
	if err := mpcp.VerifyReproduction(&out); err != nil {
		t.Fatalf("reproduction gate failed: %v\n%s", err, out.String())
	}
	if got := strings.Count(out.String(), "PASS"); got != 19 {
		t.Errorf("PASS lines = %d, want 19:\n%s", got, out.String())
	}
}

func TestVerifyExperimentSingle(t *testing.T) {
	for _, e := range mpcp.Experiments() {
		if e.ID != "E4" {
			continue
		}
		tbl, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		if err := mpcp.VerifyExperiment(tbl); err != nil {
			t.Errorf("E4: %v", err)
		}
	}
}
