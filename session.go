package mpcp

import (
	"strconv"

	"mpcp/internal/obs"
	"mpcp/internal/obs/span"
	"mpcp/internal/sim"
)

// Session is a handle on one simulation run. Start prepares it; Run
// drives it to completion in one call, or Step advances it tick by tick
// for interactive and incremental tooling (debuggers, live dashboards,
// bisection scripts) with Result, Trace and Metrics readable between
// steps. A session drives exactly one run and must not be reused or
// shared between goroutines.
type Session struct {
	eng     *sim.Engine
	metrics *obs.Registry
	run     *span.Active
	done    bool
}

// Start validates the configuration and prepares a simulation session of
// sys under protocol p. Nothing executes until Step or Run is called.
func Start(sys *System, p Protocol, opts ...SimOption) (*Session, error) {
	var s simSettings
	for _, opt := range opts {
		opt(&s)
	}
	init := s.tracer.Start(s.spanParent, "sim.init", p.Name())
	e, err := sim.New(sys, p, s.cfg)
	init.End()
	if err != nil {
		return nil, err
	}
	run := s.tracer.Start(s.spanParent, "sim.run", p.Name())
	return &Session{eng: e, metrics: s.metrics, run: run}, nil
}

// Step advances the simulation and reports whether the run has completed
// (horizon reached, stop-on-miss triggered, or deadlock detected). By
// default one Step may cover many ticks — the event-horizon fast path
// jumps over quiet stretches; combine with WithReferenceStepper for
// strict one-tick-per-Step semantics. After done, further Steps are
// no-ops reporting done.
func (s *Session) Step() (done bool, err error) {
	done, err = s.eng.Step()
	if done {
		s.finish()
	}
	return done, err
}

// Run drives the session to completion and returns its result. It is
// equivalent to calling Step until done.
func (s *Session) Run() (*SimResult, error) {
	for {
		done, err := s.Step()
		if err != nil {
			return nil, err
		}
		if done {
			return s.Result(), nil
		}
	}
}

// Now returns the current simulation tick; between Steps it is the next
// tick to execute.
func (s *Session) Now() int { return s.eng.Now() }

// Result returns the statistics accumulated so far. It is valid between
// Steps; after the run completes it is the final result.
func (s *Session) Result() *SimResult { return s.eng.Result() }

// Trace returns the event log configured with WithTrace, or nil when the
// session records no trace.
func (s *Session) Trace() *Trace {
	if l := s.eng.Log(); l.Enabled() {
		return l
	}
	return nil
}

// Metrics returns the registry configured with WithMetrics, or nil. The
// run's metrics are in place once the session completes.
func (s *Session) Metrics() *MetricsRegistry { return s.metrics }

// finish records the completed run into the metrics registry and closes
// the sim.run span, once.
func (s *Session) finish() {
	if s.done {
		return
	}
	s.done = true
	if s.run != nil {
		res := s.eng.Result()
		s.run.EndWith(
			span.A("horizon", strconv.Itoa(res.Horizon)),
			span.A("ticks_skipped", strconv.Itoa(res.TicksSkipped)))
	}
	if s.metrics == nil {
		return
	}
	res := s.eng.Result()
	obs.CollectSimSpeed(s.metrics, res.Horizon, res.TicksSkipped)
	if l := s.Trace(); l != nil {
		obs.CollectTrace(s.metrics, l, s.eng.Sys(), res.Horizon)
	}
}
