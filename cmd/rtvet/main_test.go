package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const fixtureDir = "./internal/lint/testdata/src/floatcompare"

func TestRunCleanRepo(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"./..."}, &out, &errOut); code != 0 {
		t.Fatalf("rtvet ./... = exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run printed findings:\n%s", out.String())
	}
}

func TestRunReportsFixtureFindings(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-unscoped", "-only", "floatcompare", fixtureDir}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "floatcompare: exact float comparison") {
		t.Errorf("findings missing analyzer output:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "finding(s)") {
		t.Errorf("stderr missing summary line:\n%s", errOut.String())
	}
}

func TestRunJSONFindings(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-json", "-unscoped", "-only", "floatcompare", fixtureDir}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstderr:\n%s", code, errOut.String())
	}
	var findings []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(findings) == 0 {
		t.Fatal("JSON output has no findings")
	}
	for _, f := range findings {
		if f.Analyzer != "floatcompare" {
			t.Errorf("finding from %q leaked through -only floatcompare", f.Analyzer)
		}
		if f.File == "" || f.Line == 0 || f.Message == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
	}
}

func TestRunList(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, want 0\nstderr:\n%s", code, errOut.String())
	}
	for _, name := range []string{
		"determinism", "lockdiscipline", "allocbudget", "protocontract",
		"lockorder", "exhaustiveswitch", "floatcompare", "jsonstable",
	} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

func TestRunSARIF(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-sarif", "-unscoped", "-only", "floatcompare", fixtureDir}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstderr:\n%s", code, errOut.String())
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out.Bytes(), &log); err != nil {
		t.Fatalf("output is not SARIF JSON: %v\n%s", err, out.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("unexpected SARIF envelope: version %q, %d runs", log.Version, len(log.Runs))
	}
	r := log.Runs[0]
	if r.Tool.Driver.Name != "rtvet" || len(r.Tool.Driver.Rules) == 0 {
		t.Errorf("driver not described: %+v", r.Tool.Driver)
	}
	if len(r.Results) == 0 {
		t.Fatal("SARIF run has no results")
	}
	for _, res := range r.Results {
		if res.RuleID != "floatcompare" || res.Level != "error" {
			t.Errorf("unexpected result %+v", res)
		}
		if len(res.Locations) != 1 {
			t.Fatalf("result without location: %+v", res)
		}
		loc := res.Locations[0].PhysicalLocation
		if !strings.HasPrefix(loc.ArtifactLocation.URI, "internal/lint/testdata/") || loc.Region.StartLine == 0 {
			t.Errorf("location not module-relative: %+v", loc)
		}
	}
}

// TestRunSuppressionsAudit runs the audit over the repository: every
// //rtlint:allow must carry a justification, and the listing must name
// the analyzers it silences.
func TestRunSuppressionsAudit(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-suppressions", "./..."}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, want 0 (a suppression without justification?)\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if strings.Contains(out.String(), "MISSING JUSTIFICATION") {
		t.Errorf("audit lists unjustified suppressions:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "suppression(s)") {
		t.Errorf("stderr missing summary:\n%s", errOut.String())
	}
}

// TestRunSuppressionsFailsOnEmptyJustification proves the audit's
// failure mode on a fixture suppression that names an analyzer but
// gives no reason.
func TestRunSuppressionsFailsOnEmptyJustification(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-suppressions", "./internal/lint/testdata/src/suppressions"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "MISSING JUSTIFICATION") {
		t.Errorf("audit did not flag the empty justification:\n%s", out.String())
	}
}

func TestRunUnknownAnalyzer(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-only", "nosuchanalyzer"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown analyzer") {
		t.Errorf("stderr missing unknown-analyzer message:\n%s", errOut.String())
	}
}
