package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const fixtureDir = "./internal/lint/testdata/src/floatcompare"

func TestRunCleanRepo(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"./..."}, &out, &errOut); code != 0 {
		t.Fatalf("rtvet ./... = exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run printed findings:\n%s", out.String())
	}
}

func TestRunReportsFixtureFindings(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-unscoped", "-only", "floatcompare", fixtureDir}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "floatcompare: exact float comparison") {
		t.Errorf("findings missing analyzer output:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "finding(s)") {
		t.Errorf("stderr missing summary line:\n%s", errOut.String())
	}
}

func TestRunJSONFindings(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-json", "-unscoped", "-only", "floatcompare", fixtureDir}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstderr:\n%s", code, errOut.String())
	}
	var findings []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(findings) == 0 {
		t.Fatal("JSON output has no findings")
	}
	for _, f := range findings {
		if f.Analyzer != "floatcompare" {
			t.Errorf("finding from %q leaked through -only floatcompare", f.Analyzer)
		}
		if f.File == "" || f.Line == 0 || f.Message == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
	}
}

func TestRunList(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, want 0\nstderr:\n%s", code, errOut.String())
	}
	for _, name := range []string{"determinism", "lockdiscipline", "exhaustiveswitch", "floatcompare", "jsonstable"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

func TestRunUnknownAnalyzer(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-only", "nosuchanalyzer"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown analyzer") {
		t.Errorf("stderr missing unknown-analyzer message:\n%s", errOut.String())
	}
}
