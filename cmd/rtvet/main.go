// Command rtvet is the multichecker for the repository's domain
// analyzers (internal/lint): determinism, lockdiscipline, allocbudget,
// protocontract, lockorder, exhaustiveswitch, floatcompare and
// jsonstable. It is the compile-time complement to the runtime
// conformance oracles — where rtcheck catches a contract violation when
// it happens to manifest in a trace, rtvet rejects the code path that
// could violate it at all.
//
// Usage:
//
//	rtvet [packages]             # default ./..., scoped per analyzer
//	rtvet -list                  # describe the analyzers and scopes
//	rtvet -only determinism ...  # run a subset, comma-separated
//	rtvet -unscoped ...          # apply every analyzer to every package
//	rtvet -json ...              # findings as a JSON array
//	rtvet -sarif ...             # findings as SARIF 2.1.0 (CI artifact)
//	rtvet -escapes ...           # -gcflags=-m escape check of hotpaths
//	rtvet -suppressions ...      # audit //rtlint:allow justifications
//	rtvet -C dir ...             # run in another module directory
//
// Findings print as file:line:col: analyzer: message. Exit status is 0
// when clean, 1 when there are findings (or, under -suppressions, a
// suppression without justification), 2 when loading fails. Individual
// lines are suppressed with `//rtlint:allow <analyzer> <justification>`
// on the finding's line or the line above (docs/static-analysis.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"mpcp/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("rtvet", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		list         = fs.Bool("list", false, "list analyzers and their scopes, then exit")
		only         = fs.String("only", "", "comma-separated analyzer names to run (default all)")
		unscoped     = fs.Bool("unscoped", false, "ignore per-analyzer package scopes and check everything")
		asJSON       = fs.Bool("json", false, "print findings as a JSON array")
		asSARIF      = fs.Bool("sarif", false, "print findings as SARIF 2.1.0")
		escapes      = fs.Bool("escapes", false, "cross-check //rtlint:hotpath functions against go build -gcflags=-m")
		suppressions = fs.Bool("suppressions", false, "audit //rtlint:allow comments; fail on empty justifications")
		chdir        = fs.String("C", ".", "module directory to run in")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	suite := lint.DefaultSuite()
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var filtered []lint.Scoped
		for _, sc := range suite {
			if keep[sc.Analyzer.Name] {
				filtered = append(filtered, sc)
				delete(keep, sc.Analyzer.Name)
			}
		}
		for name := range keep {
			fmt.Fprintf(errOut, "rtvet: unknown analyzer %q\n", name)
			return 2
		}
		suite = filtered
	}
	if *unscoped {
		for i := range suite {
			suite[i].Prefixes = nil
		}
	}

	if *list {
		for _, sc := range suite {
			scope := "all packages"
			if len(sc.Prefixes) > 0 {
				scope = strings.Join(sc.Prefixes, ", ")
			}
			fmt.Fprintf(out, "%-17s %s\n%17s   scope: %s\n", sc.Analyzer.Name, sc.Analyzer.Doc, "", scope)
		}
		return 0
	}

	dir, err := lint.ModuleRoot(*chdir)
	if err != nil {
		fmt.Fprintln(errOut, "rtvet:", err)
		return 2
	}

	if *suppressions {
		return runSuppressions(dir, fs.Args(), out, errOut)
	}

	var diags []lint.Diagnostic
	if *escapes {
		diags, err = lint.CheckEscapes(dir, fs.Args()...)
	} else {
		diags, err = lint.RunSuite(dir, suite, fs.Args()...)
	}
	if err != nil {
		fmt.Fprintln(errOut, "rtvet:", err)
		return 2
	}

	switch {
	case *asSARIF:
		if err := writeSARIF(out, dir, suite, diags); err != nil {
			fmt.Fprintln(errOut, "rtvet:", err)
			return 2
		}
	case *asJSON:
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		type finding struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		fns := make([]finding, 0, len(diags))
		for _, d := range diags {
			fns = append(fns, finding{
				File: relTo(dir, d.Pos.Filename), Line: d.Pos.Line, Column: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
		if err := enc.Encode(fns); err != nil {
			fmt.Fprintln(errOut, "rtvet:", err)
			return 2
		}
	default:
		for _, d := range diags {
			d.Pos.Filename = relTo(dir, d.Pos.Filename)
			fmt.Fprintln(out, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(errOut, "rtvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// runSuppressions implements the audit mode: every //rtlint:allow in
// the loaded packages is listed with its justification, and a
// suppression that names an analyzer but offers no reason fails the
// audit — an unexplained suppression is a finding waiting to come back.
func runSuppressions(dir string, patterns []string, out, errOut io.Writer) int {
	pkgs, err := lint.Load(dir, patterns...)
	if err != nil {
		fmt.Fprintln(errOut, "rtvet:", err)
		return 2
	}
	sups := lint.Suppressions(pkgs)
	missing := 0
	for _, s := range sups {
		just := s.Justification
		if just == "" {
			just = "MISSING JUSTIFICATION"
			missing++
		}
		fmt.Fprintf(out, "%s:%d: %s: %s\n", relTo(dir, s.Pos.Filename), s.Pos.Line, s.Analyzer, just)
	}
	fmt.Fprintf(errOut, "rtvet: %d suppression(s), %d without justification\n", len(sups), missing)
	if missing > 0 {
		return 1
	}
	return 0
}

// SARIF 2.1.0 output, minimal but schema-valid: one run, one rule per
// suite analyzer, module-relative artifact URIs.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

func writeSARIF(out io.Writer, dir string, suite []lint.Scoped, diags []lint.Diagnostic) error {
	driver := sarifDriver{Name: "rtvet"}
	for _, sc := range suite {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               sc.Analyzer.Name,
			ShortDescription: sarifText{Text: sc.Analyzer.Doc},
		})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(relTo(dir, d.Pos.Filename))},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	})
}

// relTo shortens absolute finding paths to module-relative ones.
func relTo(dir, path string) string {
	if rel, err := filepath.Rel(dir, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
