// Command rtvet is the multichecker for the repository's domain
// analyzers (internal/lint): determinism, lockdiscipline,
// exhaustiveswitch, floatcompare and jsonstable. It is the compile-time
// complement to the runtime conformance oracles — where rtcheck catches
// a contract violation when it happens to manifest in a trace, rtvet
// rejects the code path that could violate it at all.
//
// Usage:
//
//	rtvet [packages]             # default ./..., scoped per analyzer
//	rtvet -list                  # describe the analyzers and scopes
//	rtvet -only determinism ...  # run a subset, comma-separated
//	rtvet -unscoped ...          # apply every analyzer to every package
//	rtvet -json ...              # findings as a JSON array
//	rtvet -C dir ...             # run in another module directory
//
// Findings print as file:line:col: analyzer: message. Exit status is 0
// when clean, 1 when there are findings, 2 when loading fails.
// Individual lines are suppressed with `//rtlint:allow <analyzer>
// <justification>` on the finding's line or the line above
// (docs/static-analysis.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"mpcp/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("rtvet", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		list     = fs.Bool("list", false, "list analyzers and their scopes, then exit")
		only     = fs.String("only", "", "comma-separated analyzer names to run (default all)")
		unscoped = fs.Bool("unscoped", false, "ignore per-analyzer package scopes and check everything")
		asJSON   = fs.Bool("json", false, "print findings as a JSON array")
		chdir    = fs.String("C", ".", "module directory to run in")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	suite := lint.DefaultSuite()
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var filtered []lint.Scoped
		for _, sc := range suite {
			if keep[sc.Analyzer.Name] {
				filtered = append(filtered, sc)
				delete(keep, sc.Analyzer.Name)
			}
		}
		for name := range keep {
			fmt.Fprintf(errOut, "rtvet: unknown analyzer %q\n", name)
			return 2
		}
		suite = filtered
	}
	if *unscoped {
		for i := range suite {
			suite[i].Prefixes = nil
		}
	}

	if *list {
		for _, sc := range suite {
			scope := "all packages"
			if len(sc.Prefixes) > 0 {
				scope = strings.Join(sc.Prefixes, ", ")
			}
			fmt.Fprintf(out, "%-17s %s\n%17s   scope: %s\n", sc.Analyzer.Name, sc.Analyzer.Doc, "", scope)
		}
		return 0
	}

	dir, err := lint.ModuleRoot(*chdir)
	if err != nil {
		fmt.Fprintln(errOut, "rtvet:", err)
		return 2
	}
	diags, err := lint.RunSuite(dir, suite, fs.Args()...)
	if err != nil {
		fmt.Fprintln(errOut, "rtvet:", err)
		return 2
	}

	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		type finding struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		fns := make([]finding, 0, len(diags))
		for _, d := range diags {
			fns = append(fns, finding{
				File: relTo(dir, d.Pos.Filename), Line: d.Pos.Line, Column: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
		if err := enc.Encode(fns); err != nil {
			fmt.Fprintln(errOut, "rtvet:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			d.Pos.Filename = relTo(dir, d.Pos.Filename)
			fmt.Fprintln(out, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(errOut, "rtvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// relTo shortens absolute finding paths to module-relative ones.
func relTo(dir, path string) string {
	if rel, err := filepath.Rel(dir, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
