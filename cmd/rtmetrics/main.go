// Command rtmetrics validates and summarizes metrics snapshots written
// by rtsim -metrics, rtsweep -metrics or rttrace -metrics. It exits
// non-zero when a snapshot fails schema validation, which makes it the
// CI gate for the documented metrics format.
//
// Usage:
//
//	rtmetrics snapshot.json...           # validate and summarize
//	rtmetrics -q snapshot.json...        # validate only
//	rtmetrics -prom snapshot.json...     # render as Prometheus text exposition
//
// -prom prints each snapshot in the Prometheus text format (0.0.4) —
// the same rendering the /metrics endpoint serves — so scrapes can be
// reproduced and diffed offline.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mpcp/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rtmetrics:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rtmetrics", flag.ContinueOnError)
	quiet := fs.Bool("q", false, "validate only, print nothing on success")
	prom := fs.Bool("prom", false, "render each snapshot in the Prometheus text exposition format")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("no snapshot files given")
	}
	for _, path := range fs.Args() {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		s, err := obs.ReadSnapshot(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if *quiet {
			continue
		}
		if *prom {
			if err := s.WritePrometheus(out); err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			continue
		}
		fmt.Fprintf(out, "%s: valid (format %s v%d): %d counters, %d gauges, %d histograms\n",
			path, s.Format, s.Version, len(s.Counters), len(s.Gauges), len(s.Histograms))
		for _, c := range s.Counters {
			fmt.Fprintf(out, "  counter    %-40s %d\n", c.Name, c.Value)
		}
		for _, g := range s.Gauges {
			fmt.Fprintf(out, "  gauge      %-40s %g\n", g.Name, g.Value)
		}
		for _, h := range s.Histograms {
			fmt.Fprintf(out, "  histogram  %-40s n=%d mean=%.1f min=%d max=%d\n",
				h.Name, h.Count, h.Mean(), h.Min, h.Max)
		}
	}
	return nil
}
