package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mpcp/internal/obs"
)

// writeSnapshot records a few instruments and writes a valid snapshot.
func writeSnapshot(t *testing.T) string {
	t.Helper()
	reg := obs.NewRegistry()
	reg.Counter("points_done").Add(7)
	reg.Gauge("utilization").Set(0.5)
	reg.Histogram("latency_us").Observe(12)
	path := filepath.Join(t.TempDir(), "metrics.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := reg.Snapshot().WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSummarizes(t *testing.T) {
	path := writeSnapshot(t)
	var out strings.Builder
	if err := run([]string{path}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, want := range []string{"valid", "points_done", "utilization", "latency_us", "n=1"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunQuiet(t *testing.T) {
	path := writeSnapshot(t)
	var out strings.Builder
	if err := run([]string{"-q", path}, &out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("-q printed output: %q", out.String())
	}
}

// TestPromGolden pins the Prometheus text exposition byte-for-byte:
// testdata/snapshot.json rendered with -prom must match
// testdata/prom.golden. Scrape consumers depend on this format, so a
// rendering change must be deliberate — regenerate the golden with
//
//	go run ./cmd/rtmetrics -prom cmd/rtmetrics/testdata/snapshot.json \
//	  > cmd/rtmetrics/testdata/prom.golden
func TestPromGolden(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "prom.golden"))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-prom", filepath.Join("testdata", "snapshot.json")}, &out); err != nil {
		t.Fatalf("run -prom: %v", err)
	}
	if out.String() != string(want) {
		t.Errorf("prometheus exposition drifted from testdata/prom.golden:\n--- got ---\n%s--- want ---\n%s", out.String(), want)
	}
}

func TestRunRejectsInvalid(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"format":"wrong","version":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{path}, &out); err == nil {
		t.Error("malformed snapshot accepted")
	}
	if err := run([]string{}, &out); err == nil {
		t.Error("no arguments accepted")
	}
	if err := run([]string{"/nonexistent.json"}, &out); err == nil {
		t.Error("missing file accepted")
	}
}
