package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mpcp/internal/dist"
)

// TestRunCleanProtocols: a small budget over the default protocols exits
// 0 and prints the per-protocol summary.
func TestRunCleanProtocols(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{"-trials", "3", "-seed", "1", "-repro-dir", t.TempDir()}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, errw.String(), out.String())
	}
	if !strings.Contains(out.String(), "rtcheck: 21 trials, 0 failing") {
		t.Errorf("missing summary line in output:\n%s", out.String())
	}
	for _, proto := range []string{"msrp", "fmlp"} {
		if !strings.Contains(out.String(), proto) {
			t.Errorf("default run does not cover %s:\n%s", proto, out.String())
		}
	}
}

// TestRunDeterministicAcrossWorkers: stdout and the JSON report must be
// byte-identical for -workers 1 and -workers 8.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	dir := t.TempDir()
	runWith := func(workers, rep string) (string, []byte) {
		var out, errw bytes.Buffer
		code := run([]string{"-protocols", "mpcp,none", "-trials", "4", "-seed", "3",
			"-workers", workers, "-out", rep, "-repro-dir", dir}, &out, &errw)
		if code != 0 {
			t.Fatalf("exit %d: %s", code, errw.String())
		}
		data, err := os.ReadFile(rep)
		if err != nil {
			t.Fatal(err)
		}
		return out.String(), data
	}
	o1, r1 := runWith("1", filepath.Join(dir, "r1.json"))
	o8, r8 := runWith("8", filepath.Join(dir, "r8.json"))
	if o1 != o8 {
		t.Error("stdout differs between -workers 1 and -workers 8")
	}
	if !bytes.Equal(r1, r8) {
		t.Error("JSON report differs between -workers 1 and -workers 8")
	}
}

// TestRunBrokenWritesReproAndReplay: the broken protocol exits 1, leaves
// a repro on disk, and -replay on that repro reproduces (exit 1 again).
func TestRunBrokenWritesReproAndReplay(t *testing.T) {
	dir := t.TempDir()
	var out, errw bytes.Buffer
	code := run([]string{"-protocols", "broken", "-trials", "10", "-seed", "1", "-repro-dir", dir}, &out, &errw)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errw.String())
	}
	repros, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(repros) == 0 {
		t.Fatalf("no repro written; stdout:\n%s", out.String())
	}
	var rout, rerr bytes.Buffer
	if code := run([]string{"-replay", repros[0]}, &rout, &rerr); code != 1 {
		t.Fatalf("replay exit %d, want 1; stderr: %s\nstdout: %s", code, rerr.String(), rout.String())
	}
	if !strings.Contains(rout.String(), "reproduced") {
		t.Errorf("replay output missing verdict:\n%s", rout.String())
	}
}

// TestRunReportShape: the -out report is valid JSON with the requested
// protocols and trial count.
func TestRunReportShape(t *testing.T) {
	rep := filepath.Join(t.TempDir(), "report.json")
	var out, errw bytes.Buffer
	if code := run([]string{"-protocols", "pcp", "-trials", "2", "-out", rep, "-repro-dir", t.TempDir()}, &out, &errw); code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
	data, err := os.ReadFile(rep)
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Protocols []string `json:"protocols"`
		Trials    int      `json:"trials"`
		Results   []any    `json:"results"`
	}
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatal(err)
	}
	if len(parsed.Protocols) != 1 || parsed.Protocols[0] != "pcp" || parsed.Trials != 2 || len(parsed.Results) != 2 {
		t.Errorf("unexpected report shape: %+v", parsed)
	}
}

// TestRunServerMode: -server fans the trials out to an rtsweepd
// coordinator, and stdout, exit code and the JSON report match a local
// run of the same options byte for byte.
func TestRunServerMode(t *testing.T) {
	srv := dist.NewServer(dist.ServerOptions{ShardSize: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	w := &dist.Worker{Client: &dist.Client{BaseURL: ts.URL}, Name: "t", Workers: 2, Poll: 2 * time.Millisecond}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := w.Run(ctx); err != nil && ctx.Err() == nil {
			t.Errorf("worker: %v", err)
		}
	}()

	dir := t.TempDir()
	runWith := func(extra ...string) (string, int, []byte) {
		rep := filepath.Join(t.TempDir(), "report.json")
		args := append([]string{"-protocols", "mpcp,none", "-trials", "4", "-seed", "3",
			"-repro-dir", dir, "-out", rep}, extra...)
		var out, errw bytes.Buffer
		code := run(args, &out, &errw)
		data, err := os.ReadFile(rep)
		if err != nil {
			t.Fatal(err)
		}
		return out.String(), code, data
	}
	localOut, localCode, localRep := runWith()
	remoteOut, remoteCode, remoteRep := runWith("-server", ts.URL)
	cancel()
	wg.Wait()

	if localCode != remoteCode {
		t.Errorf("exit codes differ: local %d vs -server %d", localCode, remoteCode)
	}
	if localOut != remoteOut {
		t.Errorf("stdout differs:\n%s\nvs\n%s", localOut, remoteOut)
	}
	if !bytes.Equal(localRep, remoteRep) {
		t.Errorf("JSON report differs between local and -server runs")
	}
}

// TestRunUsageErrors: bad flags, positional arguments, unknown protocols
// and missing replay files all exit 2.
func TestRunUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-nonesuch"},
		{"positional"},
		{"-protocols", "nonesuch", "-trials", "1"},
		{"-replay", filepath.Join(t.TempDir(), "missing.json")},
	}
	for _, args := range cases {
		var out, errw bytes.Buffer
		if code := run(args, &out, &errw); code != 2 {
			t.Errorf("run(%v) exit %d, want 2", args, code)
		}
	}
}
