// Command rtcheck runs the conformance harness (internal/conformance):
// randomized differential and metamorphic checking of every protocol
// implementation against the simulator invariants and the analytical
// blocking bounds, with automatic shrinking of failures to replayable
// JSON repros.
//
// Usage:
//
//	rtcheck -trials 200 -seed 1
//	rtcheck -protocols mpcp,dpcp,hybrid -trials 500 -workers 8 -out report.json
//	rtcheck -replay testdata/conformance/broken-invariants-0123456789abcdef.json
//	rtcheck -server http://127.0.0.1:7632 -trials 500
//
// With -server the trials fan out across the workers of an rtsweepd
// service (docs/distributed.md); the report, repro bytes and repro
// paths are identical to a local run of the same options.
//
// Output is deterministic and byte-identical regardless of -workers. The
// exit status is 0 when every trial passed, 1 when any oracle was
// violated (shrunk repros are written under -repro-dir), and 2 on usage
// or I/O errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mpcp/internal/conformance"
	"mpcp/internal/dist"
	"mpcp/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("rtcheck", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		protocols = fs.String("protocols", strings.Join(conformance.DefaultProtocols, ","),
			"comma-separated protocols to check (also: "+strings.Join(extraProtocols(), ", ")+")")
		trials   = fs.Int("trials", 25, "random task sets per protocol")
		seed     = fs.Int64("seed", 1, "base seed sharding all trial seeds")
		workers  = fs.Int("workers", 0, "worker goroutines (0 = all CPUs); never affects results")
		shrink   = fs.Bool("shrink", true, "shrink failing trials to minimal repros")
		outPath  = fs.String("out", "", "write the full JSON report to this file")
		reproDir = fs.String("repro-dir", "testdata/conformance", "directory for shrunk repro files (empty to disable)")
		horizon  = fs.Int("horizon", 0, "simulation horizon in ticks (0 = one hyperperiod past the largest offset)")
		replay   = fs.String("replay", "", "replay one repro file and exit")
		server   = fs.String("server", "", "run the trials on an rtsweepd coordinator at this URL instead of in-process")
		sporadic = fs.Bool("sporadic", false, "force every trial onto a sporadic+jittered workload shape (release-model smoke gate; use with the multiprocessor protocols)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(errw, "rtcheck: unexpected arguments: %v\n", fs.Args())
		return 2
	}

	if *replay != "" {
		return replayRepro(*replay, out, errw)
	}

	opts := conformance.Options{
		Protocols: splitList(*protocols),
		Trials:    *trials,
		BaseSeed:  *seed,
		Workers:   *workers,
		Shrink:    *shrink,
		ReproDir:  *reproDir,
		Horizon:   *horizon,
	}
	if *sporadic {
		wl := workload.Default(0) // seed is replaced per trial
		wl.NumProcs = 3
		wl.TasksPerProc = 3
		wl.UtilPerProc = 0.4
		wl.Sporadic = true
		wl.MaxJitterFrac = 0.1
		opts.Workload = &wl
	}
	var rep *conformance.Report
	var err error
	if *server != "" {
		// Remote fan-out via the sharded sweep service: trial order,
		// repro bytes and repro paths match a local run of the same
		// options (docs/distributed.md).
		rep, err = dist.RunConformance(&dist.Client{BaseURL: *server}, opts, 0)
	} else {
		rep, err = conformance.Run(opts)
	}
	if err != nil {
		fmt.Fprintln(errw, "rtcheck:", err)
		return 2
	}

	perProto := make(map[string]int)
	for _, r := range rep.Results {
		if len(r.Violations) > 0 {
			perProto[r.Protocol]++
			for _, v := range r.Violations {
				fmt.Fprintf(out, "FAIL %s trial %d seed %d: %s: %s\n",
					r.Protocol, r.Trial, r.Seed, v.Oracle, v.Message)
			}
			if r.ReproPath != "" {
				fmt.Fprintf(out, "  repro: %s\n", r.ReproPath)
			}
		}
	}
	for _, p := range rep.Protocols {
		fmt.Fprintf(out, "%-14s trials=%d failures=%d\n", p, rep.Trials, perProto[p])
	}
	failures := rep.Failures()
	fmt.Fprintf(out, "rtcheck: %d trials, %d failing\n", len(rep.Results), failures)

	if *outPath != "" {
		if err := writeReport(*outPath, rep); err != nil {
			fmt.Fprintln(errw, "rtcheck:", err)
			return 2
		}
	}
	if failures > 0 {
		return 1
	}
	return 0
}

func replayRepro(path string, out, errw io.Writer) int {
	r, err := conformance.LoadRepro(path)
	if err != nil {
		fmt.Fprintln(errw, "rtcheck:", err)
		return 2
	}
	vs, err := r.Replay()
	if err != nil {
		fmt.Fprintln(errw, "rtcheck:", err)
		return 2
	}
	fmt.Fprintf(out, "replay %s: protocol=%s oracle=%s horizon=%d\n", path, r.Protocol, r.Oracle, r.Horizon)
	for _, v := range vs {
		fmt.Fprintf(out, "  %s: %s\n", v.Oracle, v.Message)
	}
	if len(vs) > 0 {
		fmt.Fprintf(out, "reproduced: %d violation(s)\n", len(vs))
		return 1
	}
	fmt.Fprintln(out, "did not reproduce (stale repro?)")
	return 0
}

func writeReport(path string, rep *conformance.Report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// extraProtocols lists the checkable protocols outside the default
// set, derived from the conformance registry so the help text never
// goes stale.
func extraProtocols() []string {
	inDefault := make(map[string]bool, len(conformance.DefaultProtocols))
	for _, p := range conformance.DefaultProtocols {
		inDefault[p] = true
	}
	var out []string
	for _, p := range conformance.KnownProtocols {
		if !inDefault[p] {
			out = append(out, p)
		}
	}
	return out
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
