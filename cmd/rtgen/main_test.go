package main

import (
	"strings"
	"testing"

	"mpcp/internal/config"
)

func TestRunEmitsLoadableConfig(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-seed", "9", "-procs", "3", "-tasks", "2", "-util", "0.4"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	sys, err := config.Parse(strings.NewReader(out.String()))
	if err != nil {
		t.Fatalf("generated config does not parse: %v", err)
	}
	if sys.NumProcs != 3 || len(sys.Tasks) != 6 {
		t.Errorf("shape: procs=%d tasks=%d, want 3 and 6", sys.NumProcs, len(sys.Tasks))
	}
}

func TestRunDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := run([]string{"-seed", "5"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-seed", "5"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("identical seeds emitted different configs")
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-util", "2.0"}, &out); err == nil {
		t.Error("invalid utilization accepted")
	}
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
}
