// Command rtgen emits a random workload (see internal/workload) as a JSON
// description consumable by rtsim and rtsched, so sweeps can be scripted
// outside Go.
//
// Usage:
//
//	rtgen -seed 7 -procs 4 -tasks 4 -util 0.5 > system.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"mpcp/internal/config"
	"mpcp/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rtgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rtgen", flag.ContinueOnError)
	var (
		seed    = fs.Int64("seed", 1, "random seed")
		procs   = fs.Int("procs", 4, "number of processors")
		tasks   = fs.Int("tasks", 4, "tasks per processor")
		util    = fs.Float64("util", 0.5, "utilization target per processor")
		globals = fs.Int("globals", 3, "number of global semaphores")
		locals  = fs.Int("locals", 2, "local semaphores per processor")
		csMin   = fs.Int("cs-min", 2, "minimum critical section length (ticks)")
		csMax   = fs.Int("cs-max", 6, "maximum critical section length (ticks)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := workload.Default(*seed)
	cfg.NumProcs = *procs
	cfg.TasksPerProc = *tasks
	cfg.UtilPerProc = *util
	cfg.GlobalSems = *globals
	cfg.LocalSemsPerProc = *locals
	cfg.CSTicks = [2]int{*csMin, *csMax}

	sys, err := workload.Generate(cfg)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(config.FromSystem(sys))
}
