package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"strconv"

	"mpcp/internal/config"
	"mpcp/internal/core"
	"mpcp/internal/obs"
	"mpcp/internal/sim"
	"mpcp/internal/trace"
)

const cfgPath = "../../testdata/avionics.json"

// writeTrace simulates the sample workload and writes its trace JSON.
func writeTrace(t *testing.T) string {
	t.Helper()
	sys, err := config.Load(cfgPath)
	if err != nil {
		t.Fatal(err)
	}
	log := trace.New()
	e, err := sim.New(sys, core.New(core.Options{}), sim.Config{Horizon: 200, Trace: log})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := log.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunRendersTrace(t *testing.T) {
	tracePath := writeTrace(t)
	var out strings.Builder
	if err := run([]string{"-config", cfgPath, "-trace", tracePath, "-to", "30"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, want := range []string{"trace:", "exec ticks", "P0", "invariants"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunEvents(t *testing.T) {
	tracePath := writeTrace(t)
	var out strings.Builder
	if err := run([]string{"-config", cfgPath, "-trace", tracePath, "-events"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "release") {
		t.Error("event log missing")
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{}, &out); err == nil {
		t.Error("missing flags accepted")
	}
	if err := run([]string{"-config", cfgPath, "-trace", "/nonexistent.json"}, &out); err == nil {
		t.Error("missing trace file accepted")
	}
}

// writeStreamTrace simulates the sample workload through a streaming
// sink and returns the JSONL path plus the true simulated horizon.
func writeStreamTrace(t *testing.T) (string, int) {
	t.Helper()
	sys, err := config.Load(cfgPath)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sink := trace.NewStreamSink(f)
	e, err := sim.New(sys, core.New(core.Options{}), sim.Config{Horizon: 200, Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, res.Horizon
}

func TestRunBlockingAttribution(t *testing.T) {
	tracePath := writeTrace(t)
	var out strings.Builder
	err := run([]string{"-config", cfgPath, "-trace", tracePath,
		"-blocking", "-protocol", "mpcp", "-horizon", "200"}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, want := range []string{
		"blocking attribution over 200 ticks",
		"globWait",
		"measured worst-case blocking vs analytical bound",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(s, "NO") {
		t.Error("measured blocking exceeds the analytical bound on the sample workload")
	}
}

func TestRunBlockingBadProtocol(t *testing.T) {
	tracePath := writeTrace(t)
	var out strings.Builder
	err := run([]string{"-config", cfgPath, "-trace", tracePath, "-blocking", "-protocol", "bogus"}, &out)
	if err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Errorf("bad -protocol accepted: %v", err)
	}
}

func TestRunStreamedTrace(t *testing.T) {
	tracePath, horizon := writeStreamTrace(t)
	var out strings.Builder
	err := run([]string{"-config", cfgPath, "-trace", tracePath,
		"-blocking", "-horizon", strconv.Itoa(horizon)}, &out)
	if err != nil {
		t.Fatalf("run on streamed trace: %v", err)
	}
	if !strings.Contains(out.String(), "blocking attribution") {
		t.Error("attribution missing for streamed trace")
	}
}

func TestRunMetricsFromTrace(t *testing.T) {
	tracePath := writeTrace(t)
	metrics := filepath.Join(t.TempDir(), "metrics.json")
	var out strings.Builder
	err := run([]string{"-config", cfgPath, "-trace", tracePath,
		"-horizon", "200", "-metrics", metrics}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	mf, err := os.Open(metrics)
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	if _, err := obs.ReadSnapshot(mf); err != nil {
		t.Fatalf("metrics snapshot invalid: %v", err)
	}
}
