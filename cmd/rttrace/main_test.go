package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mpcp/internal/config"
	"mpcp/internal/core"
	"mpcp/internal/sim"
	"mpcp/internal/trace"
)

const cfgPath = "../../testdata/avionics.json"

// writeTrace simulates the sample workload and writes its trace JSON.
func writeTrace(t *testing.T) string {
	t.Helper()
	sys, err := config.Load(cfgPath)
	if err != nil {
		t.Fatal(err)
	}
	log := trace.New()
	e, err := sim.New(sys, core.New(core.Options{}), sim.Config{Horizon: 200, Trace: log})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := log.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunRendersTrace(t *testing.T) {
	tracePath := writeTrace(t)
	var out strings.Builder
	if err := run([]string{"-config", cfgPath, "-trace", tracePath, "-to", "30"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, want := range []string{"trace:", "exec ticks", "P0", "invariants"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunEvents(t *testing.T) {
	tracePath := writeTrace(t)
	var out strings.Builder
	if err := run([]string{"-config", cfgPath, "-trace", tracePath, "-events"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "release") {
		t.Error("event log missing")
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{}, &out); err == nil {
		t.Error("missing flags accepted")
	}
	if err := run([]string{"-config", cfgPath, "-trace", "/nonexistent.json"}, &out); err == nil {
		t.Error("missing trace file accepted")
	}
}
