// Command rttrace renders a trace previously written by rtsim -trace-out
// (or mpcp.WriteTraceJSON): a per-processor Gantt chart, invariant
// checks, and optionally the raw event log.
//
// Usage:
//
//	rttrace -config system.json -trace run.json [-from 0] [-to 60] [-events]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mpcp/internal/config"
	"mpcp/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rttrace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rttrace", flag.ContinueOnError)
	var (
		configPath = fs.String("config", "", "JSON workload the trace was produced from (required)")
		tracePath  = fs.String("trace", "", "JSON trace file (required)")
		from       = fs.Int("from", 0, "first tick of the chart")
		to         = fs.Int("to", 0, "last tick of the chart (0 = trace horizon)")
		events     = fs.Bool("events", false, "print the event log")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *configPath == "" || *tracePath == "" {
		return fmt.Errorf("missing -config or -trace")
	}

	sys, err := config.Load(*configPath)
	if err != nil {
		return err
	}
	f, err := os.Open(*tracePath)
	if err != nil {
		return err
	}
	defer f.Close()
	log, err := trace.ReadJSON(f)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "trace: %d events, %d execution ticks, horizon %d\n\n",
		len(log.Events), len(log.Execs), log.Horizon())
	fmt.Fprint(out, log.Summary())
	fmt.Fprintln(out)
	fmt.Fprint(out, log.Gantt(sys, *from, *to))

	bad := false
	for _, v := range trace.CheckMutex(log) {
		fmt.Fprintln(out, "mutex violation:", v)
		bad = true
	}
	for _, v := range trace.CheckGcsPreemption(log, sys.NumProcs) {
		fmt.Fprintln(out, "gcs-preemption violation:", v)
		bad = true
	}
	if !bad {
		fmt.Fprintln(out, "\ninvariants: mutual exclusion ok, gcs never preempted by non-critical code")
	}

	if *events {
		fmt.Fprintln(out)
		for _, e := range log.Events {
			fmt.Fprintln(out, e)
		}
	}
	return nil
}
