// Command rttrace renders a trace previously written by rtsim -trace-out
// or streamed with rtsim -trace-stream: a per-processor Gantt chart,
// invariant checks, blocking attribution against the Section 5.1
// taxonomy, and optionally the raw event log.
//
// With -timeline it instead merges span streams (rtsweep -spans,
// rtsweepd -spans) into Chrome trace-event JSON openable in
// https://ui.perfetto.dev — see docs/observability.md.
//
// Usage:
//
//	rttrace -config system.json -trace run.json [-from 0] [-to 60] [-events]
//	rttrace -config system.json -trace run.json -blocking [-protocol mpcp]
//	rttrace -timeline -out timeline.json coord-spans.jsonl worker-spans.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mpcp/internal/analysis"
	"mpcp/internal/config"
	"mpcp/internal/obs"
	"mpcp/internal/obs/span"
	"mpcp/internal/registry"
	"mpcp/internal/task"
	"mpcp/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rttrace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rttrace", flag.ContinueOnError)
	var (
		configPath = fs.String("config", "", "JSON workload the trace was produced from (required)")
		tracePath  = fs.String("trace", "", "JSON trace file (required)")
		from       = fs.Int("from", 0, "first tick of the chart")
		to         = fs.Int("to", 0, "last tick of the chart (0 = trace horizon)")
		events     = fs.Bool("events", false, "print the event log")
		blocking   = fs.Bool("blocking", false, "attribute every waiting tick to the Section 5.1 blocking taxonomy")
		protoName  = fs.String("protocol", "", "with -blocking: compare measured blocking to this protocol's analytical bound ("+strings.Join(registry.Analyzable(), ", ")+")")
		horizon    = fs.Int("horizon", 0, "simulated horizon in ticks (0 = one past the last trace record)")
		metricsOut = fs.String("metrics", "", "write a metrics snapshot derived from the trace as JSON to this file")
		timeline   = fs.Bool("timeline", false, "merge the span-stream JSONL files given as arguments into Chrome trace-event JSON (Perfetto)")
		timelineTo = fs.String("out", "", "with -timeline: output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *timeline {
		return runTimeline(out, *timelineTo, fs.Args())
	}
	if *configPath == "" || *tracePath == "" {
		return fmt.Errorf("missing -config or -trace")
	}

	sys, err := config.Load(*configPath)
	if err != nil {
		return err
	}
	log, err := loadTrace(*tracePath)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "trace: %d events, %d execution ticks, horizon %d\n\n",
		len(log.Events), len(log.Execs), log.Horizon())
	fmt.Fprint(out, log.Summary())
	fmt.Fprintln(out)
	fmt.Fprint(out, log.Gantt(sys, *from, *to))

	bad := false
	for _, v := range trace.CheckMutex(log) {
		fmt.Fprintln(out, "mutex violation:", v)
		bad = true
	}
	for _, v := range trace.CheckGcsPreemption(log, sys.NumProcs) {
		fmt.Fprintln(out, "gcs-preemption violation:", v)
		bad = true
	}
	if !bad {
		fmt.Fprintln(out, "\ninvariants: mutual exclusion ok, gcs never preempted by non-critical code")
	}

	endTick := *horizon
	if endTick <= 0 {
		endTick = log.Horizon()
	}

	if *blocking {
		rep, err := obs.Attribute(log, sys, endTick)
		if err != nil {
			return err
		}
		var bounds map[task.ID]*analysis.Bound
		if *protoName != "" {
			bounds, err = registry.Analyze(*protoName, sys, registry.AnalyzeOpts{DeferredPenalty: true})
			if err != nil {
				return fmt.Errorf("-protocol: %w", err)
			}
		}
		printBlocking(out, rep, bounds)
	}

	if *metricsOut != "" {
		reg := obs.NewRegistry()
		obs.CollectTrace(reg, log, sys, endTick)
		rep, err := obs.Attribute(log, sys, endTick)
		if err != nil {
			return err
		}
		obs.CollectAttribution(reg, rep)
		f, err := os.Create(*metricsOut)
		if err != nil {
			return err
		}
		if err := reg.Snapshot().WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nmetrics snapshot written to %s\n", *metricsOut)
	}

	if *events {
		fmt.Fprintln(out)
		for _, e := range log.Events {
			fmt.Fprintln(out, e)
		}
	}
	return nil
}

// runTimeline merges one or more span-stream JSONL files into one
// Chrome trace-event JSON document. Streams from different processes
// (coordinator + workers) share trace and span IDs, so concatenating
// them reassembles the distributed span tree.
func runTimeline(out io.Writer, outPath string, paths []string) error {
	if len(paths) == 0 {
		return fmt.Errorf("-timeline needs at least one span-stream file argument")
	}
	var spans []span.Span
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		ss, err := span.ReadStream(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		spans = append(spans, ss...)
	}

	if outPath == "" {
		return span.WriteTimeline(out, spans)
	}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	if err := span.WriteTimeline(f, spans); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "timeline with %d span(s) written to %s\n", len(spans), outPath)
	return nil
}

// loadTrace reads either a buffered JSON trace (rtsim -trace-out) or a
// JSONL stream (rtsim -trace-stream), sniffing the stream header.
func loadTrace(path string) (*trace.Log, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if strings.HasPrefix(strings.TrimLeft(string(data), " \t\r\n"), `{"format":"mpcp-trace-stream"`) {
		return trace.ReadStream(strings.NewReader(string(data)))
	}
	return trace.ReadJSON(strings.NewReader(string(data)))
}

func printBlocking(out io.Writer, rep *obs.Report, bounds map[task.ID]*analysis.Bound) {
	fmt.Fprintf(out, "\nblocking attribution over %d ticks (Section 5.1 taxonomy):\n", rep.EndTick)
	fmt.Fprintf(out, "%-6s %-5s %-8s %-8s %-8s %-7s %-8s %-8s %-8s %-8s\n",
		"task", "jobs", "running", "remote", "preempt", "local", "globWait", "spin", "gcsInv", "inv")
	for _, ta := range rep.Tasks {
		fmt.Fprintf(out, "%-6d %-5d %-8d %-8d %-8d %-7d %-8d %-8d %-8d %-8d\n",
			ta.Task, ta.Jobs, ta.Running, ta.RemoteExec, ta.Preemption,
			ta.LocalBlocking, ta.GlobalWait, ta.Spin, ta.GcsInversion, ta.Inversion)
	}
	if bounds == nil {
		return
	}
	fmt.Fprintf(out, "\nmeasured worst-case blocking vs analytical bound:\n")
	fmt.Fprintf(out, "%-6s %-10s %-8s %-8s\n", "task", "measured", "bound", "within")
	for _, row := range obs.CompareBounds(rep, bounds) {
		within := "yes"
		if !row.Within {
			within = "NO"
		}
		fmt.Fprintf(out, "%-6d %-10d %-8d %-8s\n", row.Task, row.Measured, row.Bound, within)
	}
}
