// Command rtsim simulates a workload (JSON description, see
// internal/config) under a chosen synchronization protocol and reports
// per-task statistics, optionally with a Gantt chart and event log.
//
// Usage:
//
//	rtsim -config system.json [-protocol mpcp] [-horizon N] [-gantt] [-events] [-gantt-to N]
//	rtsim -config system.json -trace-stream run.jsonl -metrics run-metrics.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"mpcp/internal/cli"
	"mpcp/internal/config"
	"mpcp/internal/obs"
	"mpcp/internal/sim"
	"mpcp/internal/task"
	"mpcp/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rtsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rtsim", flag.ContinueOnError)
	var (
		configPath = fs.String("config", "", "path to the JSON workload description (required)")
		protoName  = fs.String("protocol", "mpcp", "protocol: "+cli.ProtocolNames)
		horizon    = fs.Int("horizon", 0, "ticks to simulate (0 = one hyperperiod)")
		gantt      = fs.Bool("gantt", false, "print a per-processor execution chart")
		ganttTo    = fs.Int("gantt-to", 60, "last tick of the chart")
		events     = fs.Bool("events", false, "print the full event log")
		checks     = fs.Bool("check", true, "verify mutual exclusion and gcs-preemption invariants")
		traceOut   = fs.String("trace-out", "", "write the trace as JSON to this file")
		streamOut  = fs.String("trace-stream", "", "stream the trace as JSONL to this file while running")
		metricsOut = fs.String("metrics", "", "write a metrics snapshot (responses, semaphores, utilization, blocking attribution) as JSON to this file")
		reference  = fs.Bool("reference", false, "use the single-tick reference stepper instead of the event-horizon fast path (identical output, slower)")
		relSeed    = fs.Int64("release-seed", 0, "seed for sporadic-gap and release-jitter draws (0 = the workload's own releaseSeed)")
		overload   = fs.String("overload", "continue", "deadline-miss semantics: continue (record the miss, keep running) or abort (kill the job at its deadline)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *configPath == "" {
		return fmt.Errorf("missing -config")
	}

	sys, err := config.Load(*configPath)
	if err != nil {
		return err
	}
	p, err := cli.ResolveProtocolFor(*protoName, sys)
	if err != nil {
		return err
	}

	var policy sim.OverloadPolicy
	switch *overload {
	case "continue":
		policy = sim.OverloadContinue
	case "abort":
		policy = sim.OverloadAbort
	default:
		return fmt.Errorf("unknown -overload %q (choose continue or abort)", *overload)
	}

	log := trace.New()
	cfg := sim.Config{
		Horizon: *horizon, Trace: log, ReferenceStepper: *reference,
		ReleaseSeed: *relSeed, Overload: policy,
	}
	var streamFile *os.File
	if *streamOut != "" {
		f, err := os.Create(*streamOut)
		if err != nil {
			return err
		}
		streamFile = f
		cfg.Sink = trace.NewStreamSink(f)
	}
	engine, err := sim.New(sys, p, cfg)
	if err != nil {
		return err
	}
	res, err := engine.Run()
	if streamFile != nil {
		if cerr := cfg.Sink.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if cerr := streamFile.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "protocol: %s   horizon: %d ticks   procs: %d   tasks: %d\n\n",
		res.Protocol, res.Horizon, sys.NumProcs, len(sys.Tasks))

	fmt.Fprintf(out, "%-6s %-10s %-5s %-7s %-5s %-9s %-9s %-8s %-8s %-7s\n",
		"task", "name", "proc", "period", "jobs", "missed", "maxResp", "avgResp", "maxB", "deadl?")
	ids := make([]int, 0, len(res.Stats))
	for id := range res.Stats {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, idInt := range ids {
		id := task.ID(idInt)
		tk := sys.TaskByID(id)
		st := res.Stats[id]
		ok := "ok"
		if st.Missed > 0 {
			ok = "MISS"
		}
		fmt.Fprintf(out, "%-6d %-10s %-5d %-7d %-5d %-9d %-9d %-8.1f %-8d %-7s\n",
			idInt, tk.Name, tk.Proc, tk.Period, st.Finished, st.Missed,
			st.MaxResponse, st.AvgResponse(), st.MaxMeasuredB, ok)
	}

	fmt.Fprintln(out)
	fmt.Fprintf(out, "%-6s %-8s %-8s %-8s %-8s %-12s\n", "proc", "busy", "idle", "gcs", "preempt", "utilization")
	for i, ps := range res.Procs {
		fmt.Fprintf(out, "P%-5d %-8d %-8d %-8d %-8d %-12.2f\n",
			i, ps.BusyTicks, ps.IdleTicks, ps.GcsTicks, ps.Preemptions, ps.Utilization())
	}

	if res.Deadlock {
		fmt.Fprintf(out, "\nDEADLOCK detected at t=%d\n", res.DeadlockAt)
	}

	if *checks {
		bad := false
		for _, v := range trace.CheckMutex(log) {
			fmt.Fprintln(out, "mutex violation:", v)
			bad = true
		}
		for _, v := range trace.CheckGcsPreemption(log, sys.NumProcs) {
			fmt.Fprintln(out, "gcs-preemption violation:", v)
			bad = true
		}
		if !bad {
			fmt.Fprintln(out, "\ninvariants: mutual exclusion ok, gcs never preempted by non-critical code")
		}
	}

	if *gantt {
		fmt.Fprintln(out)
		fmt.Fprint(out, log.Gantt(sys, 0, *ganttTo))
	}
	if *events {
		fmt.Fprintln(out)
		for _, e := range log.Events {
			fmt.Fprintln(out, e)
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := log.WriteJSON(f); err != nil {
			return err
		}
		fmt.Fprintf(out, "\ntrace written to %s\n", *traceOut)
	}
	if *metricsOut != "" {
		endTick := res.Horizon
		if res.Deadlock {
			endTick = res.DeadlockAt + 1
		}
		reg := obs.NewRegistry()
		obs.CollectTrace(reg, log, sys, endTick)
		obs.CollectSimSpeed(reg, res.Horizon, res.TicksSkipped)
		rep, err := obs.Attribute(log, sys, endTick)
		if err != nil {
			return err
		}
		obs.CollectAttribution(reg, rep)
		f, err := os.Create(*metricsOut)
		if err != nil {
			return err
		}
		if err := reg.Snapshot().WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nmetrics snapshot written to %s\n", *metricsOut)
	}
	return nil
}
