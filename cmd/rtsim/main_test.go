package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mpcp/internal/obs"
	"mpcp/internal/trace"
)

const cfgPath = "../../testdata/avionics.json"

func TestRunBasic(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-config", cfgPath}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, want := range []string{"protocol: mpcp", "inner-loop", "invariants", "utilization"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(s, "MISS") {
		t.Error("unexpected deadline miss in the sample workload")
	}
}

func TestRunAllProtocols(t *testing.T) {
	for _, p := range []string{"mpcp", "mpcp-spin", "mpcp-fifo", "mpcp-ceil", "dpcp", "none", "none-prio", "inherit"} {
		var out strings.Builder
		if err := run([]string{"-config", cfgPath, "-protocol", p}, &out); err != nil {
			t.Errorf("protocol %s: %v", p, err)
		}
	}
}

func TestRunGanttAndEvents(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-config", cfgPath, "-gantt", "-gantt-to", "20", "-events"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "P0") || !strings.Contains(out.String(), "release") {
		t.Error("gantt or event log missing")
	}
}

func TestRunTraceOut(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.json")
	var out strings.Builder
	if err := run([]string{"-config", cfgPath, "-trace-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"events"`) {
		t.Error("trace file malformed")
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{}, &out); err == nil {
		t.Error("missing -config accepted")
	}
	if err := run([]string{"-config", "/nonexistent.json"}, &out); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"-config", cfgPath, "-protocol", "bogus"}, &out); err == nil {
		t.Error("unknown protocol accepted")
	}
	if err := run([]string{"-not-a-flag"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunMetricsAndStream(t *testing.T) {
	dir := t.TempDir()
	buffered := filepath.Join(dir, "trace.json")
	streamed := filepath.Join(dir, "trace.jsonl")
	metrics := filepath.Join(dir, "metrics.json")
	var out strings.Builder
	err := run([]string{"-config", cfgPath, "-horizon", "300",
		"-trace-out", buffered, "-trace-stream", streamed, "-metrics", metrics}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	// The streamed trace replays to the same log the buffered export holds.
	sf, err := os.Open(streamed)
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	replayed, err := trace.ReadStream(sf)
	if err != nil {
		t.Fatal(err)
	}
	var viaStream bytes.Buffer
	if err := replayed.WriteJSON(&viaStream); err != nil {
		t.Fatal(err)
	}
	direct, err := os.ReadFile(buffered)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct, viaStream.Bytes()) {
		t.Error("streamed trace replay differs from -trace-out export")
	}

	mf, err := os.Open(metrics)
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	if _, err := obs.ReadSnapshot(mf); err != nil {
		t.Fatalf("metrics snapshot invalid: %v", err)
	}
}
