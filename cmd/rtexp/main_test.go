package main

import (
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, id := range []string{"E1", "E6", "E13", "E19"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("list missing %s", id)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-run", "E4"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "Table 4-1") {
		t.Error("E4 table missing")
	}
}

func TestRunCSV(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-run", "E5", "-csv"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "task,semaphore") {
		t.Errorf("CSV header missing:\n%s", out.String())
	}
}

func TestRunVerifySingle(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-run", "E1", "-verify"}, &out); err != nil {
		t.Fatalf("verification failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "PASS E1") {
		t.Error("PASS line missing")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-run", "E99"}, &out); err == nil {
		t.Error("unknown experiment accepted")
	}
}
