// Command rtexp regenerates every table and figure of the paper's
// evaluation (the per-experiment index of DESIGN.md). With no flags it
// runs everything in paper order.
//
// Usage:
//
//	rtexp [-run E6] [-list]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mpcp/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rtexp:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rtexp", flag.ContinueOnError)
	var (
		only   = fs.String("run", "", "run only this experiment (e.g. E6); default all")
		list   = fs.Bool("list", false, "list experiments and exit")
		asCSV  = fs.Bool("csv", false, "emit CSV instead of formatted tables")
		verify = fs.Bool("verify", false, "check each artifact against its acceptance criteria and print PASS/FAIL")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	all := experiments.All()
	if *list {
		for _, e := range all {
			fmt.Fprintln(out, e.ID)
		}
		return nil
	}

	ran, failed := 0, 0
	for _, e := range all {
		if *only != "" && !strings.EqualFold(e.ID, *only) {
			continue
		}
		t, err := e.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		switch {
		case *verify:
			if err := experiments.Verify(t); err != nil {
				fmt.Fprintf(out, "FAIL %-4s %s: %v\n", t.ID, t.Title, err)
				failed++
			} else {
				fmt.Fprintf(out, "PASS %-4s %s\n", t.ID, t.Title)
			}
		case *asCSV:
			fmt.Fprintf(out, "# %s: %s\n%s\n", t.ID, t.Title, t.RenderCSV())
		default:
			fmt.Fprintln(out, t.Render())
		}
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiment named %q", *only)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d artifacts failed verification", failed, ran)
	}
	return nil
}
