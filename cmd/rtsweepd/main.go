// Command rtsweepd is the sharded sweep service (internal/dist): a
// coordinator daemon that accepts campaign and conformance jobs over
// HTTP/JSON, partitions them into shards handed out under expiring
// leases, deduplicates work through a content-addressed result cache,
// and persists resumable checkpoints — plus a worker mode that pulls
// and computes shards for a coordinator.
//
// Usage:
//
//	rtsweepd -listen 127.0.0.1:7632 -cache-dir .rtsweepd/cache -data-dir .rtsweepd
//	rtsweepd -worker -server http://127.0.0.1:7632 -name w1 -workers 8
//	rtsweep  -server http://127.0.0.1:7632 -spec sweep.json -out out.jsonl
//
// The coordinator also serves the ops endpoint on the same address:
// /metrics.json (request counts and latency, lease and cache hit/miss
// counters), /debug/vars and /debug/pprof/. Results are byte-identical
// to a single-process rtsweep run of the same spec, regardless of shard
// size, worker count, or crash/retry history — see docs/distributed.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"mpcp/internal/dist"
	"mpcp/internal/obs"
	"mpcp/internal/obs/span"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "rtsweepd:", err)
		os.Exit(1)
	}
}

// notifyListen, when set (by tests), receives the coordinator's bound
// address once it is accepting connections.
var notifyListen func(addr string)

// shutdownCh, when set (by tests), stops the coordinator when closed.
var shutdownCh chan struct{}

func run(args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("rtsweepd", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		worker = fs.Bool("worker", false, "run as a worker pulling shards from -server instead of as the coordinator")

		// Coordinator flags.
		listen       = fs.String("listen", "127.0.0.1:7632", "coordinator listen address (port 0 picks a free port)")
		cacheDir     = fs.String("cache-dir", "", "content-addressed result cache directory (empty disables caching)")
		dataDir      = fs.String("data-dir", "", "job checkpoint directory (empty disables resumable checkpoints)")
		shardSize    = fs.Int("shard-size", 0, "units per shard (0 = default)")
		leaseTTL     = fs.Duration("lease-ttl", 0, "shard lease time-to-live (0 = default 60s)")
		localWorkers = fs.Int("local-workers", 0, "embedded worker loops to run in-process (0 = coordinator only)")

		// Worker flags.
		server   = fs.String("server", "", "coordinator URL (worker mode)")
		name     = fs.String("name", "", "worker name reported in leases (default host/pid)")
		workers  = fs.Int("workers", 0, "goroutines per shard evaluation (0 = all CPUs)")
		poll     = fs.Duration("poll", 500*time.Millisecond, "lease back-off while no work is available")
		idleExit = fs.Duration("idle-exit", 0, "exit after this long with no leasable work (0 = run forever)")
		drain    = fs.Bool("drain", false, "exit as soon as every job known to the coordinator is complete (batch mode)")

		// Both modes.
		spans = fs.String("spans", "", "stream coordinator/worker spans as JSONL to this file; render with rttrace -timeline")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *worker {
		if *server == "" {
			return fmt.Errorf("-worker requires -server")
		}
		return runWorker(errw, *server, *name, *workers, *poll, *idleExit, *drain, *spans)
	}
	return runCoordinator(errw, coordinatorConfig{
		listen:       *listen,
		cacheDir:     *cacheDir,
		dataDir:      *dataDir,
		shardSize:    *shardSize,
		leaseTTL:     *leaseTTL,
		localWorkers: *localWorkers,
		pool:         *workers,
		poll:         *poll,
		spans:        *spans,
	})
}

// openSpanSink opens path for span streaming and returns a tracer for
// actor plus a close function that reports stream errors to errw.
func openSpanSink(errw io.Writer, path, actor string) (*span.Tracer, func(), error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	sink := span.NewStreamSink(f)
	closeFn := func() {
		if err := sink.Close(); err != nil {
			fmt.Fprintf(errw, "rtsweepd: span stream: %v\n", err)
		}
	}
	return span.New(sink, actor), closeFn, nil
}

type coordinatorConfig struct {
	listen       string
	cacheDir     string
	dataDir      string
	shardSize    int
	leaseTTL     time.Duration
	localWorkers int
	pool         int
	poll         time.Duration
	spans        string
}

func runCoordinator(errw io.Writer, cfg coordinatorConfig) error {
	reg := obs.NewRegistry()
	var tracer *span.Tracer
	if cfg.spans != "" {
		tr, closeSink, err := openSpanSink(errw, cfg.spans, "coordinator")
		if err != nil {
			return err
		}
		defer closeSink()
		tracer = tr
	}
	var cache *dist.Cache
	if cfg.cacheDir != "" {
		var err error
		cache, err = dist.NewCache(cfg.cacheDir, reg)
		if err != nil {
			return err
		}
	}
	srv := dist.NewServer(dist.ServerOptions{
		Cache:     cache,
		DataDir:   cfg.dataDir,
		ShardSize: cfg.shardSize,
		LeaseTTL:  cfg.leaseTTL,
		Metrics:   reg,
		Tracer:    tracer,
	})
	defer srv.Close()

	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		return err
	}
	addr := ln.Addr().String()
	fmt.Fprintf(errw, "rtsweepd: coordinator listening on http://%s (ops: /metrics.json, /debug/pprof/)\n", addr)
	if notifyListen != nil {
		notifyListen(addr)
	}

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	// Embedded workers let a lone rtsweepd both coordinate and compute.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < cfg.localWorkers; i++ {
		wg.Add(1)
		wname := fmt.Sprintf("local-%d", i)
		w := &dist.Worker{
			Client:  &dist.Client{BaseURL: "http://" + addr},
			Name:    wname,
			Workers: cfg.pool,
			Poll:    cfg.poll,
			Metrics: reg,
			Tracer:  tracer.WithActor(wname),
		}
		go func() {
			defer wg.Done()
			if _, err := w.Run(ctx); err != nil && ctx.Err() == nil {
				fmt.Fprintf(errw, "rtsweepd: embedded worker: %v\n", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		cancel()
		wg.Wait()
		return err
	case <-sig:
	case <-shutdownCh:
	}
	cancel()
	_ = httpSrv.Close()
	wg.Wait()
	fmt.Fprintln(errw, "rtsweepd: shutting down")
	return nil
}

func runWorker(errw io.Writer, server, name string, workers int, poll, idleExit time.Duration, drain bool, spans string) error {
	if name == "" {
		host, _ := os.Hostname()
		name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	reg := obs.NewRegistry()
	var tracer *span.Tracer
	if spans != "" {
		tr, closeSink, err := openSpanSink(errw, spans, name)
		if err != nil {
			return err
		}
		defer closeSink()
		tracer = tr
	}
	w := &dist.Worker{
		Client:     &dist.Client{BaseURL: server},
		Name:       name,
		Workers:    workers,
		Poll:       poll,
		IdleExit:   idleExit,
		ExitOnDone: drain,
		Metrics:    reg,
		Tracer:     tracer,
	}
	fmt.Fprintf(errw, "rtsweepd: worker %s pulling from %s\n", name, server)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		select {
		case <-sig:
			cancel()
		case <-ctx.Done():
		}
	}()

	stats, err := w.Run(ctx)
	fmt.Fprintf(errw, "rtsweepd: worker %s done: %d shard(s), %d unit(s), %d stale lease(s)\n",
		name, stats.Shards, stats.Units, stats.StaleLeases)
	if err != nil && ctx.Err() == nil {
		return err
	}
	return nil
}
