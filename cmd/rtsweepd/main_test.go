package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mpcp/internal/campaign"
	"mpcp/internal/dist"
	"mpcp/internal/obs"
	"mpcp/internal/obs/span"
)

func e2eSpec() *campaign.Spec {
	s := campaign.DefaultSpec()
	s.Name = "sweepd-e2e"
	s.SeedsPerPoint = 2
	s.Protocols = []string{campaign.ProtoMPCP, campaign.ProtoDPCP}
	s.Utils = []float64{0.35, 0.55}
	s.Procs = []int{2}
	s.TasksPerProc = []int{3}
	s.CSMax = []int{4}
	s.Simulate = true
	s.SimTickBudget = 10_000
	return s
}

// TestSweepdEndToEnd is the smoke gate behind `make sweepd-smoke`: a
// real rtsweepd coordinator process loop plus two worker process loops
// over loopback HTTP, driven by a campaign through RemoteShards, with
// the result file checked byte-for-byte against a single-process run
// and the ops endpoint checked for request metrics.
func TestSweepdEndToEnd(t *testing.T) {
	dir := t.TempDir()

	// Single-process reference run.
	localPath := filepath.Join(dir, "local.jsonl")
	if _, err := campaign.Run(e2eSpec(), campaign.Options{Workers: 1, ResultsPath: localPath}); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(localPath)
	if err != nil {
		t.Fatal(err)
	}

	// Coordinator via the real main loop, on a kernel-assigned port.
	addrCh := make(chan string, 1)
	notifyListen = func(addr string) { addrCh <- addr }
	shutdownCh = make(chan struct{})
	defer func() { notifyListen = nil; shutdownCh = nil }()

	coordErr := make(chan error, 1)
	go func() {
		coordErr <- run([]string{
			"-listen", "127.0.0.1:0",
			"-cache-dir", filepath.Join(dir, "cache"),
			"-data-dir", filepath.Join(dir, "data"),
			"-shard-size", "1",
		}, io.Discard, io.Discard)
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator did not start")
	}
	url := "http://" + addr

	// Two worker process loops in batch (-drain) mode; they exit on
	// their own once the coordinator reports every job done.
	var workerWg sync.WaitGroup
	workerErr := make(chan error, 2)
	for i := 0; i < 2; i++ {
		workerWg.Add(1)
		go func(i int) {
			defer workerWg.Done()
			workerErr <- run([]string{
				"-worker", "-server", url,
				"-name", fmt.Sprintf("w%d", i),
				"-workers", "2",
				"-poll", "10ms",
				"-drain",
				"-idle-exit", "5s",
			}, io.Discard, io.Discard)
		}(i)
	}

	// Drive the campaign through the service.
	remotePath := filepath.Join(dir, "remote.jsonl")
	if _, err := campaign.Run(e2eSpec(), campaign.Options{
		ResultsPath: remotePath,
		Executor: &dist.RemoteShards{
			Client: &dist.Client{BaseURL: url},
			Poll:   10 * time.Millisecond,
		},
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(remotePath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("distributed result file differs from single-process run:\n%s\nvs\n%s", got, want)
	}

	// Ops endpoint: request counters and latency live on the same port.
	resp, err := http.Get(url + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	snap, err := obs.ReadSnapshot(resp.Body)
	if err != nil {
		t.Fatalf("metrics.json invalid: %v", err)
	}
	var leaseRequests, unitsDone int64 = -1, -1
	for _, c := range snap.Counters {
		switch c.Name {
		case "dist_http_requests_total{route=lease}":
			leaseRequests = c.Value
		case "dist_units_done":
			unitsDone = c.Value
		}
	}
	if leaseRequests <= 0 {
		t.Errorf("lease request counter missing or zero in ops snapshot: %d", leaseRequests)
	}
	if unitsDone != 4 {
		t.Errorf("dist_units_done = %d, want 4", unitsDone)
	}

	// With the job complete the coordinator answers Done, so both
	// worker loops exit cleanly on their own; only then stop the
	// coordinator.
	workerWg.Wait()
	close(workerErr)
	for err := range workerErr {
		if err != nil {
			t.Errorf("worker loop: %v", err)
		}
	}
	close(shutdownCh)
	if err := <-coordErr; err != nil {
		t.Errorf("coordinator loop: %v", err)
	}
}

// TestObsSmoke is the gate behind `make obs-smoke`: a loopback sweep
// with span streaming on every process (coordinator -spans, worker
// -spans), the streams merged into a Chrome trace-event timeline, and
// the timeline validated to carry the coordinator, worker, shard and
// point spans plus the Prometheus endpoint on the coordinator port.
func TestObsSmoke(t *testing.T) {
	dir := t.TempDir()
	coordSpans := filepath.Join(dir, "coord-spans.jsonl")
	workerSpans := filepath.Join(dir, "worker-spans.jsonl")

	addrCh := make(chan string, 1)
	notifyListen = func(addr string) { addrCh <- addr }
	shutdownCh = make(chan struct{})
	defer func() { notifyListen = nil; shutdownCh = nil }()

	coordErr := make(chan error, 1)
	go func() {
		coordErr <- run([]string{
			"-listen", "127.0.0.1:0",
			"-shard-size", "1",
			"-spans", coordSpans,
		}, io.Discard, io.Discard)
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator did not start")
	}
	url := "http://" + addr

	workerDone := make(chan error, 1)
	go func() {
		workerDone <- run([]string{
			"-worker", "-server", url,
			"-name", "w1",
			"-workers", "2",
			"-poll", "10ms",
			"-drain",
			"-idle-exit", "5s",
			"-spans", workerSpans,
		}, io.Discard, io.Discard)
	}()

	if _, err := campaign.Run(e2eSpec(), campaign.Options{
		ResultsPath: filepath.Join(dir, "remote.jsonl"),
		Executor: &dist.RemoteShards{
			Client: &dist.Client{BaseURL: url},
			Poll:   10 * time.Millisecond,
		},
	}); err != nil {
		t.Fatal(err)
	}

	// Prometheus text exposition lives on the coordinator port.
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics content type = %q", ct)
	}
	for _, want := range []string{"# TYPE dist_units_done counter", "# TYPE go_goroutines gauge"} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("/metrics exposition missing %q", want)
		}
	}

	// Span sinks flush on shutdown; stop both loops before reading.
	if err := <-workerDone; err != nil {
		t.Fatalf("worker loop: %v", err)
	}
	close(shutdownCh)
	if err := <-coordErr; err != nil {
		t.Fatalf("coordinator loop: %v", err)
	}

	// Merge the two span streams into a timeline via the real rttrace
	// path and validate the trace-event document.
	var spans []span.Span
	for _, p := range []string{coordSpans, workerSpans} {
		f, err := os.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		ss, err := span.ReadStream(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		spans = append(spans, ss...)
	}
	var timeline bytes.Buffer
	if err := span.WriteTimeline(&timeline, spans); err != nil {
		t.Fatalf("timeline: %v", err)
	}
	stats, err := span.ValidateTimeline(bytes.NewReader(timeline.Bytes()))
	if err != nil {
		t.Fatalf("timeline invalid: %v", err)
	}
	for _, want := range []string{
		"coordinator.submit", "coordinator.partition", "coordinator.lease",
		"coordinator.ingest", "worker.shard", "worker.point",
	} {
		found := false
		for _, n := range stats.Names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("timeline missing %s spans; have %v", want, stats.Names)
		}
	}
	if stats.Processes < 2 {
		t.Errorf("timeline has %d process(es), want coordinator + worker", stats.Processes)
	}
}
