package main

import (
	"bytes"
	"context"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mpcp/internal/dist"
	"mpcp/internal/obs"
)

func runCLI(t *testing.T, args ...string) (stdout string, failures int) {
	t.Helper()
	var out bytes.Buffer
	failures, err := run(args, &out, io.Discard)
	if err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return out.String(), failures
}

func TestSmokeSpecFile(t *testing.T) {
	out, failures := runCLI(t, "-spec", "testdata/smoke.json", "-quiet")
	if failures != 0 {
		t.Fatalf("failures: %d", failures)
	}
	if !strings.Contains(out, `campaign "smoke"`) {
		t.Errorf("summary missing campaign name:\n%s", out)
	}
	if !strings.Contains(out, "mpcp") || !strings.Contains(out, "dpcp") {
		t.Errorf("summary missing protocol rows:\n%s", out)
	}
	if !strings.Contains(out, "2 points, 0 failure(s)") {
		t.Errorf("summary missing point/failure count:\n%s", out)
	}
}

func TestFlagsOverrideSpec(t *testing.T) {
	// -protocols narrows the spec file's grid to one point.
	out, _ := runCLI(t, "-spec", "testdata/smoke.json", "-protocols", "mpcp", "-quiet")
	if strings.Contains(out, "dpcp") {
		t.Errorf("-protocols did not override spec file:\n%s", out)
	}
	if !strings.Contains(out, "1 points") {
		t.Errorf("expected a single point:\n%s", out)
	}
}

func TestFormats(t *testing.T) {
	csv, _ := runCLI(t, "-spec", "testdata/smoke.json", "-quiet", "-format", "csv")
	if !strings.HasPrefix(csv, "protocol,util,") {
		t.Errorf("csv output missing header:\n%s", csv)
	}
	jsonl, _ := runCLI(t, "-spec", "testdata/smoke.json", "-quiet", "-format", "jsonl")
	lines := strings.Split(strings.TrimSpace(jsonl), "\n")
	if len(lines) != 2 || !strings.Contains(lines[0], `"key":"mpcp/`) {
		t.Errorf("jsonl output wrong:\n%s", jsonl)
	}

	if _, err := run([]string{"-format", "xml", "-spec", "testdata/smoke.json", "-quiet"}, io.Discard, io.Discard); err == nil {
		t.Error("unknown format accepted")
	}
}

// TestWorkerCountInvariance is the CLI-level determinism gate: the same
// spec at -workers=1 and -workers=8 produces byte-identical result files
// and stdout.
func TestWorkerCountInvariance(t *testing.T) {
	dir := t.TempDir()
	p1 := filepath.Join(dir, "w1.jsonl")
	p8 := filepath.Join(dir, "w8.jsonl")
	out1, _ := runCLI(t, "-spec", "testdata/smoke.json", "-quiet", "-workers", "1", "-out", p1, "-format", "jsonl")
	out8, _ := runCLI(t, "-spec", "testdata/smoke.json", "-quiet", "-workers", "8", "-out", p8, "-format", "jsonl")
	if out1 != out8 {
		t.Errorf("stdout differs between worker counts:\n%s\nvs\n%s", out1, out8)
	}
	b1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b8, err := os.ReadFile(p8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b8) {
		t.Errorf("result files differ between worker counts")
	}
}

// TestServerMode: -server hands the grid to an rtsweepd coordinator,
// and the result file and stdout are byte-identical to a local run.
func TestServerMode(t *testing.T) {
	srv := dist.NewServer(dist.ServerOptions{ShardSize: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	w := &dist.Worker{Client: &dist.Client{BaseURL: ts.URL}, Name: "t", Workers: 1, Poll: 2 * time.Millisecond}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := w.Run(ctx); err != nil && ctx.Err() == nil {
			t.Errorf("worker: %v", err)
		}
	}()

	dir := t.TempDir()
	localPath := filepath.Join(dir, "local.jsonl")
	remotePath := filepath.Join(dir, "remote.jsonl")
	localOut, _ := runCLI(t, "-spec", "testdata/smoke.json", "-quiet", "-out", localPath, "-format", "jsonl")
	remoteOut, _ := runCLI(t, "-spec", "testdata/smoke.json", "-quiet", "-server", ts.URL, "-out", remotePath, "-format", "jsonl")
	cancel()
	wg.Wait()

	if localOut != remoteOut {
		t.Errorf("stdout differs between local and -server runs:\n%s\nvs\n%s", localOut, remoteOut)
	}
	lb, err := os.ReadFile(localPath)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := os.ReadFile(remotePath)
	if err != nil {
		t.Fatal(err)
	}
	if len(lb) == 0 || !bytes.Equal(lb, rb) {
		t.Errorf("result files differ between local and -server runs:\n%s\nvs\n%s", lb, rb)
	}
}

func TestBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-utils", "abc"},
		{"-utils", ""},
		{"-procs", "x"},
		{"-protocols", "pip"},
		{"-protocols", ","},
		{"-format", "xml"},
		{"-resume"}, // requires -out
		{"-spec", "testdata/nope.json"},
		{"stray-arg"},
	} {
		if _, err := run(args, io.Discard, io.Discard); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestMetricsSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	var out, errb bytes.Buffer
	if _, err := run([]string{"-spec", "testdata/smoke.json", "-quiet", "-metrics", path}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s, err := obs.ReadSnapshot(f)
	if err != nil {
		t.Fatalf("snapshot invalid: %v", err)
	}
	var done int64 = -1
	for _, c := range s.Counters {
		if c.Name == "campaign_points_done" {
			done = c.Value
		}
	}
	if done != 2 {
		t.Errorf("campaign_points_done = %d, want 2", done)
	}
}

func TestDebugAddr(t *testing.T) {
	var out, errb bytes.Buffer
	if _, err := run([]string{"-spec", "testdata/smoke.json", "-quiet", "-debug-addr", "127.0.0.1:0"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errb.String(), "debug endpoint on http://127.0.0.1:") {
		t.Errorf("no debug endpoint announcement:\n%s", errb.String())
	}
}
