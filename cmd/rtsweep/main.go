// Command rtsweep runs a parallel schedulability campaign (see
// internal/campaign): a grid of workload parameters x protocols x seeds,
// fanned out over a worker pool, producing acceptance-ratio curves for
// MPCP vs DPCP vs the hybrid protocol in one command.
//
// Usage:
//
//	rtsweep -utils 0.3,0.4,0.5,0.6,0.7 -protocols mpcp,dpcp -seeds 50 -sim
//	rtsweep -utils 0.3,0.5,0.7 -protocols all -seeds 50
//	rtsweep -spec sweep.json -workers 8 -out sweeps/acceptance.jsonl
//	rtsweep -spec sweep.json -out sweeps/acceptance.jsonl -resume
//	rtsweep -spec sweep.json -server http://127.0.0.1:7632 -out sweeps/acceptance.jsonl
//
// With -server the grid is evaluated by an rtsweepd service
// (docs/distributed.md) instead of an in-process pool; everything else —
// checkpointing, -resume, output formats, the byte-identity guarantee —
// is unchanged.
//
// Results are deterministic regardless of -workers. The -out file is
// JSONL, one point per line, checkpointed as the campaign runs and
// rewritten in spec order on completion; -resume skips points already
// complete in it. The exit status is 0 only if every point and every
// trial succeeded (2 on partial failure), so CI catches degraded sweeps.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"mpcp/internal/campaign"
	"mpcp/internal/dist"
	"mpcp/internal/obs"
	"mpcp/internal/obs/span"
	"mpcp/internal/registry"
)

func main() {
	failures, err := run(os.Args[1:], os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtsweep:", err)
		os.Exit(1)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "rtsweep: %d trial/point failure(s) — results are degraded\n", failures)
		os.Exit(2)
	}
}

// run executes the campaign and returns the partial-failure count.
func run(args []string, out, errw io.Writer) (int, error) {
	fs := flag.NewFlagSet("rtsweep", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		specPath = fs.String("spec", "", "JSON campaign spec file (flags below override it)")

		name      = fs.String("name", "", "campaign name")
		protocols = fs.String("protocols", "", "comma-separated protocols ("+strings.Join(registry.Analyzable(), ",")+") or \"all\"")
		utils     = fs.String("utils", "", "comma-separated per-processor utilizations, e.g. 0.3,0.5,0.7")
		procs     = fs.String("procs", "", "comma-separated processor counts")
		tasks     = fs.String("tasks", "", "comma-separated tasks-per-processor counts")
		csMax     = fs.String("csmax", "", "comma-separated max critical-section lengths (ticks)")
		csMin     = fs.Int("csmin", 0, "min critical-section length (ticks)")
		seeds     = fs.Int("seeds", 0, "random task sets per grid point")
		baseSeed  = fs.Int64("base-seed", 0, "base seed sharding all trial seeds")
		simulate  = fs.Bool("sim", false, "confirm analysis verdicts with simulation runs")
		simBudget = fs.Int("sim-budget", 0, "tick budget per simulation run (0 = default)")
		hotspot   = fs.Bool("hotspot", false, "force all global critical sections onto one semaphore")
		stagger   = fs.Bool("stagger", false, "stagger release offsets")

		workers    = fs.Int("workers", 0, "worker goroutines (0 = all CPUs); ignored with -server")
		server     = fs.String("server", "", "run the campaign on an rtsweepd coordinator at this URL instead of in-process")
		outPath    = fs.String("out", "", "JSONL result file (checkpoint + final artifact)")
		resume     = fs.Bool("resume", false, "skip points already complete in -out")
		format     = fs.String("format", "table", "stdout format: table, csv or jsonl")
		quiet      = fs.Bool("quiet", false, "suppress progress output")
		metricsOut = fs.String("metrics", "", "write a campaign metrics snapshot (points, failures, per-point latency) as JSON to this file")
		debugAddr  = fs.String("debug-addr", "", "serve /metrics, /metrics.json, /debug/vars and /debug/pprof on this address while the campaign runs")
		spansOut   = fs.String("spans", "", "stream campaign spans (campaign.run, campaign.point / sweep.submit) as JSONL to this file; render with rttrace -timeline")
	)
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	if fs.NArg() > 0 {
		return 0, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *resume && *outPath == "" {
		return 0, fmt.Errorf("-resume requires -out")
	}
	switch *format {
	case "table", "csv", "jsonl":
	default:
		return 0, fmt.Errorf("unknown -format %q (table, csv or jsonl)", *format)
	}

	spec := campaign.DefaultSpec()
	if *specPath != "" {
		data, err := os.ReadFile(*specPath)
		if err != nil {
			return 0, err
		}
		spec, err = campaign.ParseSpec(data)
		if err != nil {
			return 0, err
		}
	}

	// Explicitly set flags override the spec file.
	var flagErr error
	fs.Visit(func(f *flag.Flag) {
		var err error
		switch f.Name {
		case "name":
			spec.Name = *name
		case "protocols":
			spec.Protocols, err = splitListNonEmpty(*protocols)
		case "utils":
			spec.Utils, err = parseFloats(*utils)
		case "procs":
			spec.Procs, err = parseInts(*procs)
		case "tasks":
			spec.TasksPerProc, err = parseInts(*tasks)
		case "csmax":
			spec.CSMax, err = parseInts(*csMax)
		case "csmin":
			spec.CSMin = *csMin
		case "seeds":
			spec.SeedsPerPoint = *seeds
		case "base-seed":
			spec.BaseSeed = *baseSeed
		case "sim":
			spec.Simulate = *simulate
		case "sim-budget":
			spec.SimTickBudget = *simBudget
		case "hotspot":
			spec.Hotspot = *hotspot
		case "stagger":
			spec.Stagger = *stagger
		}
		if err != nil && flagErr == nil {
			flagErr = fmt.Errorf("-%s: %w", f.Name, err)
		}
	})
	if flagErr != nil {
		return 0, flagErr
	}

	opts := campaign.Options{
		Workers:     *workers,
		ResultsPath: *outPath,
		Resume:      *resume,
	}
	var reg *obs.Registry
	if *metricsOut != "" || *debugAddr != "" {
		reg = obs.NewRegistry()
		opts.Metrics = reg
	}
	if *spansOut != "" {
		f, err := os.Create(*spansOut)
		if err != nil {
			return 0, err
		}
		sink := span.NewStreamSink(f)
		defer func() {
			if err := sink.Close(); err != nil {
				fmt.Fprintf(errw, "rtsweep: span stream: %v\n", err)
			}
		}()
		opts.Tracer = span.New(sink, "rtsweep")
	}
	if *server != "" {
		// Same campaign, remote execution: checkpointing, resume and
		// output formats are executor-independent, so the result file
		// is byte-identical to a local run (docs/distributed.md).
		opts.Executor = &dist.RemoteShards{
			Client:  &dist.Client{BaseURL: *server},
			Metrics: reg,
		}
	}
	if *debugAddr != "" {
		addr, stop, err := obs.ServeDebug(*debugAddr, reg)
		if err != nil {
			return 0, err
		}
		defer stop()
		fmt.Fprintf(errw, "debug endpoint on http://%s (metrics.json, debug/vars, debug/pprof)\n", addr)
	}
	if !*quiet {
		opts.Progress = func(p campaign.Progress) {
			fmt.Fprintf(errw, "\r%d/%d points  %.1f pts/s  ETA %s  failures %d ",
				p.Done, p.Total, p.PointsPerSec, p.ETA, p.Failures)
		}
	}
	c, err := campaign.Run(spec, opts)
	if !*quiet {
		fmt.Fprintln(errw)
	}
	if err != nil {
		return 0, err
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			return 0, err
		}
		if err := reg.Snapshot().WriteJSON(f); err != nil {
			f.Close()
			return 0, err
		}
		if err := f.Close(); err != nil {
			return 0, err
		}
		fmt.Fprintf(errw, "metrics snapshot written to %s\n", *metricsOut)
	}

	switch *format {
	case "table":
		fmt.Fprint(out, c.Table().Render())
		fmt.Fprintf(out, "\n%d points, %d failure(s)", len(c.Results), c.Failures())
		if *outPath != "" {
			fmt.Fprintf(out, ", results in %s", *outPath)
		}
		fmt.Fprintln(out)
	case "csv":
		fmt.Fprint(out, c.Table().RenderCSV())
	case "jsonl":
		for _, r := range c.Results {
			line, err := json.Marshal(r)
			if err != nil {
				return 0, err
			}
			fmt.Fprintln(out, string(line))
		}
	}
	return c.Failures(), nil
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// splitListNonEmpty rejects an explicitly empty axis flag, which would
// otherwise silently fall back to the default axis.
func splitListNonEmpty(s string) ([]string, error) {
	out := splitList(s)
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	parts, err := splitListNonEmpty(s)
	if err != nil {
		return nil, err
	}
	var out []int
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	parts, err := splitListNonEmpty(s)
	if err != nil {
		return nil, err
	}
	var out []float64
	for _, p := range parts {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("bad float %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}
