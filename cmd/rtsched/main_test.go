package main

import (
	"strings"
	"testing"
)

const cfgPath = "../../testdata/avionics.json"

func TestRunMPCP(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-config", cfgPath}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, want := range []string{"analysis: mpcp", "Theorem 3", "response-time iteration", "B/T"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunDPCP(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-config", cfgPath, "-kind", "dpcp"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "analysis: dpcp") {
		t.Error("dpcp analysis not reported")
	}
}

func TestRunCeilings(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-config", cfgPath, "-ceilings"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"P_H", "P_G", "semaphore ceilings", "gcs execution priorities"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{}, &out); err == nil {
		t.Error("missing -config accepted")
	}
	if err := run([]string{"-config", cfgPath, "-kind", "bogus"}, &out); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestRunExplain(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-config", cfgPath, "-explain", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Worst-case blocking of task 2", "Local blocking", "Deferred-execution"} {
		if !strings.Contains(s, want) {
			t.Errorf("explanation missing %q", want)
		}
	}
}

func TestRunExplainUnknown(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-config", cfgPath, "-explain", "42"}, &out); err == nil {
		t.Error("unknown task accepted for -explain")
	}
}

func TestRunHyperbolic(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-config", cfgPath, "-hyperbolic"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "hyperbolic test") {
		t.Error("hyperbolic verdict missing")
	}
}
