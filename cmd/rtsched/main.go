// Command rtsched runs the worst-case blocking analysis and both
// schedulability tests (Theorem 3's utilization bound and the
// response-time iteration) on a workload description.
//
// Usage:
//
//	rtsched -config system.json [-kind mpcp|dpcp|...] [-penalty] [-ceilings]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"mpcp/internal/analysis"
	"mpcp/internal/ceiling"
	"mpcp/internal/config"
	"mpcp/internal/registry"
	"mpcp/internal/task"
)

// explainKinds maps the registry protocols whose bounds come from the
// internal/analysis factor engine — the only ones analysis.Explain can
// narrate term-by-term — to that engine's configuration.
var explainKinds = map[string]analysis.Options{
	"mpcp":      {Kind: analysis.KindMPCP},
	"dpcp":      {Kind: analysis.KindDPCP},
	"mpcp-ceil": {Kind: analysis.KindMPCP, GcsAtCeiling: true},
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rtsched:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rtsched", flag.ContinueOnError)
	var (
		configPath = fs.String("config", "", "path to the JSON workload description (required)")
		kindName   = fs.String("kind", "mpcp", "protocol whose blocking analysis to run: "+strings.Join(registry.Analyzable(), ", "))
		penalty    = fs.Bool("penalty", true, "include the deferred-execution penalty")
		ceilings   = fs.Bool("ceilings", false, "print the Section 4 priority structure")
		explain    = fs.Int("explain", 0, "print a factor-by-factor explanation of this task's bound (MPCP)")
		hyperbolic = fs.Bool("hyperbolic", false, "also run the sharper hyperbolic utilization test")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *configPath == "" {
		return fmt.Errorf("missing -config")
	}

	sys, err := config.Load(*configPath)
	if err != nil {
		return err
	}
	desc, ok := registry.Lookup(*kindName)
	if !ok || !desc.Caps.HasBound {
		return fmt.Errorf("unknown kind %q (analyzable protocols: %s)",
			*kindName, strings.Join(registry.Analyzable(), ", "))
	}

	if *ceilings {
		printCeilings(out, sys)
	}

	bounds, err := registry.Analyze(desc.Name, sys, registry.AnalyzeOpts{DeferredPenalty: *penalty})
	if err != nil {
		return err
	}
	opts := analysis.Options{DeferredPenalty: *penalty}
	rep, err := analysis.Schedulability(sys, bounds, opts)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "analysis: %s   deferred penalty: %v\n\n", desc.Name, *penalty)
	fmt.Fprintf(out, "%-6s %-5s %-7s %-7s %-7s %-7s | %-6s %-6s %-6s %-6s %-6s %-7s | %-9s %-9s %-5s\n",
		"task", "proc", "C", "T", "B", "B/T",
		"f1", "f2", "f3", "f4", "f5", "penalty",
		"utilLHS", "utilRHS", "resp")
	ids := make([]int, 0, len(bounds))
	for id := range bounds {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	byTask := make(map[task.ID]analysis.TaskReport, len(rep.Tasks))
	for _, tr := range rep.Tasks {
		byTask[tr.Task] = tr
	}
	for _, idInt := range ids {
		id := task.ID(idInt)
		b := bounds[id]
		tr := byTask[id]
		fmt.Fprintf(out, "%-6d %-5d %-7d %-7d %-7d %-7.3f | %-6d %-6d %-6d %-6d %-6d %-7d | %-9.3f %-9.3f %-5d\n",
			idInt, tr.Proc, tr.C, tr.T, b.Total, tr.Loss(),
			b.LocalBlocking, b.GlobalHeldByLower, b.RemotePreemption,
			b.BlockingProcGcs, b.LowerLocalGcs, b.DeferredPenalty,
			tr.UtilLHS, tr.UtilRHS, tr.Response)
	}
	fmt.Fprintf(out, "\nTheorem 3 (utilization): schedulable = %v\n", rep.SchedulableUtil)
	fmt.Fprintf(out, "response-time iteration: schedulable = %v\n", rep.SchedulableResponse)
	if *hyperbolic {
		ok, _, err := analysis.HyperbolicTest(sys, bounds)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "hyperbolic test:         schedulable = %v\n", ok)
	}

	if *explain != 0 {
		kind, ok := explainKinds[desc.Name]
		if !ok {
			return fmt.Errorf("-explain supports the mpcp, mpcp-ceil and dpcp analyses, not %q", desc.Name)
		}
		opts.Kind = kind.Kind
		opts.GcsAtCeiling = kind.GcsAtCeiling
		text, err := analysis.Explain(sys, task.ID(*explain), opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\n%s", text)
	}
	return nil
}

func printCeilings(out io.Writer, sys *task.System) {
	tbl := ceiling.Compute(sys, false)
	fmt.Fprintf(out, "P_H = %d   P_G = %d\n\n", tbl.PH, tbl.PG)
	fmt.Fprintln(out, "semaphore ceilings:")
	for _, sem := range sys.Sems {
		if sem.Global {
			fmt.Fprintf(out, "  %-12s global  ceiling=%d\n", sem.Name, tbl.GlobalCeil[sem.ID])
		} else if c, ok := tbl.LocalCeil[sem.ID]; ok {
			fmt.Fprintf(out, "  %-12s local   ceiling=%d\n", sem.Name, c)
		}
	}
	fmt.Fprintln(out, "\ngcs execution priorities (P_G + P_h):")
	for _, tk := range sys.Tasks {
		for _, cs := range sys.GlobalSections(tk.ID) {
			fmt.Fprintf(out, "  task %-4d on %-12s prio=%d\n",
				tk.ID, sys.SemByID(cs.Sem).Name, tbl.GcsPrio[ceiling.Key{Task: tk.ID, Sem: cs.Sem}])
		}
	}
	fmt.Fprintln(out)
}
