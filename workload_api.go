package mpcp

import (
	"mpcp/internal/shmem"
	"mpcp/internal/workload"
)

// WorkloadConfig describes a seeded random task set for parameter sweeps;
// see internal/workload for field documentation.
type WorkloadConfig = workload.Config

// DefaultWorkload returns the baseline random-workload configuration: 4
// processors, 4 tasks each at 50% utilization, 3 global and 2 local
// semaphores per processor, short critical sections.
func DefaultWorkload(seed int64) WorkloadConfig { return workload.Default(seed) }

// GenerateWorkload builds and validates a random system. Identical
// configurations produce identical systems.
func GenerateWorkload(cfg WorkloadConfig) (*System, error) { return workload.Generate(cfg) }

// Shared-memory substrate types (Section 5.4 busy-wait study),
// re-exported.
type (
	// ContentionConfig describes a lock-contention experiment on the
	// shared-memory substrate model.
	ContentionConfig = shmem.ContentionConfig
	// ContentionStats reports bus traffic and acquisition latency.
	ContentionStats = shmem.ContentionStats
	// SpinStrategy is a busy-wait discipline.
	SpinStrategy = shmem.Strategy
)

// Busy-wait disciplines for SimulateContention.
const (
	// TASSpin retries the atomic test-and-set across the bus on every
	// spin iteration.
	TASSpin = shmem.TASSpin
	// CachedSpin spins on the locally cached lock word (snoop-
	// invalidated on release), as Section 5.4 recommends.
	CachedSpin = shmem.CachedSpin
	// IPIWait parks the waiter and hands the lock over with an
	// interprocessor interrupt.
	IPIWait = shmem.IPIWait
)

// SimulateContention runs the deterministic shared-memory substrate model
// of Section 5.4 and reports bus transactions, wait times and makespan.
func SimulateContention(cfg ContentionConfig) (*ContentionStats, error) {
	return shmem.SimulateContention(cfg)
}
