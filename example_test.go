package mpcp_test

import (
	"fmt"

	"mpcp"
)

// ExampleBuilder constructs a two-processor system sharing one global
// resource and prints its derived structure.
func ExampleBuilder() {
	b := mpcp.NewBuilder(2)
	state := b.Semaphore("state")
	b.Task("sensor", mpcp.TaskSpec{Proc: 0, Period: 100},
		mpcp.Compute(4), mpcp.Lock(state), mpcp.Compute(2), mpcp.Unlock(state), mpcp.Compute(4))
	b.Task("fusion", mpcp.TaskSpec{Proc: 1, Period: 200},
		mpcp.Compute(8), mpcp.Lock(state), mpcp.Compute(3), mpcp.Unlock(state), mpcp.Compute(9))
	sys, err := b.Build()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("tasks: %d, global: %v, sensor priority > fusion: %v\n",
		len(sys.Tasks), sys.SemByID(state).Global,
		sys.TaskByID(1).Priority > sys.TaskByID(2).Priority)
	// Output:
	// tasks: 2, global: true, sensor priority > fusion: true
}

// ExampleSimulate runs the system above under the shared-memory protocol
// for one hyperperiod.
func ExampleSimulate() {
	b := mpcp.NewBuilder(2)
	state := b.Semaphore("state")
	b.Task("sensor", mpcp.TaskSpec{Proc: 0, Period: 100},
		mpcp.Compute(4), mpcp.Lock(state), mpcp.Compute(2), mpcp.Unlock(state), mpcp.Compute(4))
	b.Task("fusion", mpcp.TaskSpec{Proc: 1, Period: 200},
		mpcp.Compute(8), mpcp.Lock(state), mpcp.Compute(3), mpcp.Unlock(state), mpcp.Compute(9))
	sys, err := b.Build()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := mpcp.Simulate(sys, mpcp.MPCP())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("horizon=%d misses=%v sensor jobs=%d fusion jobs=%d\n",
		res.Horizon, res.AnyMiss, res.Stats[1].Finished, res.Stats[2].Finished)
	// Output:
	// horizon=200 misses=false sensor jobs=2 fusion jobs=1
}

// ExampleAnalyze computes the Section 5.1 blocking bounds and runs the
// schedulability tests.
func ExampleAnalyze() {
	b := mpcp.NewBuilder(2)
	state := b.Semaphore("state")
	b.Task("sensor", mpcp.TaskSpec{Proc: 0, Period: 100},
		mpcp.Compute(4), mpcp.Lock(state), mpcp.Compute(2), mpcp.Unlock(state), mpcp.Compute(4))
	b.Task("fusion", mpcp.TaskSpec{Proc: 1, Period: 200},
		mpcp.Compute(8), mpcp.Lock(state), mpcp.Compute(3), mpcp.Unlock(state), mpcp.Compute(9))
	sys, err := b.Build()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	bounds, err := mpcp.BlockingBounds(sys)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	rep, err := mpcp.Analyze(sys, mpcp.WithDeferredPenalty())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("B(sensor)=%d B(fusion)=%d schedulable=%v\n",
		bounds[1].Total, bounds[2].Total, rep.SchedulableResponse)
	// Output:
	// B(sensor)=3 B(fusion)=4 schedulable=true
}

// ExampleCeilings prints the Section 4 priority structure.
func ExampleCeilings() {
	b := mpcp.NewBuilder(2)
	state := b.Semaphore("state")
	b.Task("sensor", mpcp.TaskSpec{Proc: 0, Period: 100},
		mpcp.Compute(4), mpcp.Lock(state), mpcp.Compute(2), mpcp.Unlock(state))
	b.Task("fusion", mpcp.TaskSpec{Proc: 1, Period: 200},
		mpcp.Compute(8), mpcp.Lock(state), mpcp.Compute(3), mpcp.Unlock(state))
	sys, err := b.Build()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	tbl := mpcp.Ceilings(sys)
	fmt.Printf("P_H=%d P_G=%d ceiling(state)=%d\n", tbl.PH, tbl.PG, tbl.GlobalCeil[state])
	// Output:
	// P_H=2 P_G=3 ceiling(state)=5
}
