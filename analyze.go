package mpcp

import (
	"mpcp/internal/alloc"
	"mpcp/internal/analysis"
	"mpcp/internal/ceiling"
	"mpcp/internal/workload"
)

// Analysis types, re-exported.
type (
	// Bound is the per-task decomposition of worst-case blocking into the
	// five factors of Section 5.1.
	Bound = analysis.Bound
	// SchedReport is a schedulability verdict (Theorem 3 utilization test
	// plus response-time iteration).
	SchedReport = analysis.Report
	// SchedTaskReport is the per-task line of a SchedReport.
	SchedTaskReport = analysis.TaskReport
	// CeilingTable is the computed priority structure of Section 4: P_H,
	// P_G, semaphore ceilings and gcs execution priorities.
	CeilingTable = ceiling.Table
)

// AnalysisOption configures blocking-bound computation.
type AnalysisOption func(*analysis.Options)

// WithDPCPAnalysis computes the bounds for the message-based protocol of
// [8] instead of the shared-memory protocol.
func WithDPCPAnalysis() AnalysisOption {
	return func(o *analysis.Options) { o.Kind = analysis.KindDPCP }
}

// ForDPCP computes the bounds for the message-based protocol of [8].
//
// Deprecated: renamed WithDPCPAnalysis for consistency with the other
// option constructors.
func ForDPCP() AnalysisOption { return WithDPCPAnalysis() }

// WithDeferredPenalty includes the deferred-execution scheduling penalty
// of Section 5.1 in each task's bound.
func WithDeferredPenalty() AnalysisOption {
	return func(o *analysis.Options) { o.DeferredPenalty = true }
}

// WithGcsAtCeilingAnalysis mirrors the WithGcsAtCeiling protocol variant
// in the analysis.
func WithGcsAtCeilingAnalysis() AnalysisOption {
	return func(o *analysis.Options) { o.GcsAtCeiling = true }
}

// AnalyzeGcsAtCeiling mirrors the WithGcsAtCeiling protocol variant in the
// analysis.
//
// Deprecated: renamed WithGcsAtCeilingAnalysis for consistency with the
// other option constructors.
func AnalyzeGcsAtCeiling() AnalysisOption { return WithGcsAtCeilingAnalysis() }

// WithDPCPSyncProc mirrors WithSyncProc for the DPCP analysis.
func WithDPCPSyncProc(s SemID, p ProcID) AnalysisOption {
	return func(o *analysis.Options) {
		if o.DPCPAssign == nil {
			o.DPCPAssign = make(map[SemID]ProcID)
		}
		o.DPCPAssign[s] = p
	}
}

// BlockingBounds computes the worst-case blocking bound B_i of every task
// under the shared-memory protocol (or DPCP with ForDPCP).
func BlockingBounds(sys *System, opts ...AnalysisOption) (map[TaskID]*Bound, error) {
	o := analysis.Options{Kind: analysis.KindMPCP}
	for _, opt := range opts {
		opt(&o)
	}
	return analysis.Bounds(sys, o)
}

// Analyze computes blocking bounds and runs both schedulability tests.
func Analyze(sys *System, opts ...AnalysisOption) (*SchedReport, error) {
	o := analysis.Options{Kind: analysis.KindMPCP}
	for _, opt := range opts {
		opt(&o)
	}
	bounds, err := analysis.Bounds(sys, o)
	if err != nil {
		return nil, err
	}
	return analysis.Schedulability(sys, bounds, o)
}

// ExplainBound renders a human-readable, factor-by-factor account of a
// task's worst-case blocking under the shared-memory protocol: which
// semaphores, sections and tasks contribute and how often. The headline
// number matches BlockingBounds.
func ExplainBound(sys *System, id TaskID, opts ...AnalysisOption) (string, error) {
	o := analysis.Options{Kind: analysis.KindMPCP}
	for _, opt := range opts {
		opt(&o)
	}
	return analysis.Explain(sys, id, o)
}

// HybridAnalysisOptions configures HybridBlockingBounds; see
// internal/analysis.HybridOptions.
type HybridAnalysisOptions = analysis.HybridOptions

// HybridBlockingBounds computes per-task worst-case blocking under the
// mixed shared-memory/message-based protocol, composing the MPCP and
// DPCP factor contributions per semaphore. With an empty Remote set it
// equals BlockingBounds; with every global semaphore remote it equals
// the DPCP bounds.
func HybridBlockingBounds(sys *System, opts HybridAnalysisOptions) (map[TaskID]*Bound, error) {
	return analysis.HybridBounds(sys, opts)
}

// Ceilings computes the priority structure of Section 4 for a validated
// system: P_H, P_G, local and global semaphore ceilings, and the fixed
// execution priority of every global critical section.
func Ceilings(sys *System) *CeilingTable { return ceiling.Compute(sys, false) }

// PCPBounds computes the uniprocessor priority ceiling protocol blocking
// bound (Section 2's review of [10]): at most one lower-priority critical
// section whose ceiling reaches the task's priority. Every semaphore must
// be local.
func PCPBounds(sys *System) (map[TaskID]*Bound, error) { return analysis.PCPBounds(sys) }

// HyperbolicTest runs the Bini-Buttazzo utilization test with blocking —
// a sharper sufficient condition than Theorem 3's Liu-Layland form. It
// returns the overall verdict and the per-task outcomes.
func HyperbolicTest(sys *System, bounds map[TaskID]*Bound) (bool, map[TaskID]bool, error) {
	return analysis.HyperbolicTest(sys, bounds)
}

// LiuLaylandBound returns n(2^{1/n}-1), the rate-monotonic schedulable
// utilization bound Section 3.2 quotes for static binding.
func LiuLaylandBound(n int) float64 { return analysis.LiuLaylandBound(n) }

// Allocation types, re-exported from internal/alloc.
type (
	// TaskSpecUnbound describes a task before processor binding, for the
	// allocation heuristics.
	TaskSpecUnbound = alloc.Spec
)

// FirstFitRM binds unbound tasks to processors by decreasing utilization
// under the Liu-Layland bound.
func FirstFitRM(specs []TaskSpecUnbound, numProcs int) (map[TaskID]ProcID, error) {
	return alloc.FirstFitRM(specs, numProcs)
}

// ResourceAffinity binds unbound tasks, co-locating tasks that share
// semaphores so the shared semaphores become local (Section 6's advice).
func ResourceAffinity(specs []TaskSpecUnbound, numProcs int) (map[TaskID]ProcID, error) {
	return alloc.ResourceAffinity(specs, numProcs)
}

// ApplyBinding builds a validated System from unbound tasks, a binding
// and semaphore declarations, assigning rate-monotonic priorities.
func ApplyBinding(specs []TaskSpecUnbound, binding map[TaskID]ProcID, numProcs int, sems []*Semaphore) (*System, error) {
	return alloc.Apply(specs, binding, numProcs, sems)
}

// MinProcessorsMPCP searches for the smallest processor count whose
// resource-affinity (or first-fit) binding passes the shared-memory
// protocol's blocking-aware response-time analysis — the Section 6
// allocation objective. It returns the count, the binding and the built
// system.
func MinProcessorsMPCP(specs []TaskSpecUnbound, sems []*Semaphore, maxProcs int) (int, map[TaskID]ProcID, *System, error) {
	return alloc.MinProcessors(specs, sems, maxProcs, func(sys *System) (bool, error) {
		opts := analysis.Options{Kind: analysis.KindMPCP, DeferredPenalty: true}
		bounds, err := analysis.Bounds(sys, opts)
		if err != nil {
			return false, err
		}
		rep, err := analysis.Schedulability(sys, bounds, opts)
		if err != nil {
			return false, err
		}
		return rep.SchedulableResponse, nil
	})
}

// SharingGraphDOT renders the task/resource sharing graph in Graphviz DOT
// form for documentation and debugging of allocations.
func SharingGraphDOT(specs []TaskSpecUnbound, sems []*Semaphore) string {
	return alloc.SharingGraphDOT(specs, sems)
}

// GenerateUnboundSpecs builds a seeded random unbound task set for
// allocation studies.
func GenerateUnboundSpecs(cfg UnboundSpecsConfig) ([]TaskSpecUnbound, []*Semaphore, error) {
	return workload.GenerateSpecs(cfg)
}

// UnboundSpecsConfig configures GenerateUnboundSpecs.
type UnboundSpecsConfig = workload.SpecsConfig

// DefaultUnboundSpecs returns the baseline unbound-spec configuration.
func DefaultUnboundSpecs(seed int64) UnboundSpecsConfig { return workload.DefaultSpecs(seed) }
