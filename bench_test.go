package mpcp_test

// The benchmark harness regenerates every table and figure of the paper
// (see DESIGN.md's per-experiment index). Each BenchmarkE* target runs the
// corresponding experiment end to end — workload construction, simulation
// and/or analysis — and reports it once per iteration, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation. Micro-benchmarks for the simulator and
// the protocol hot paths follow at the end.

import (
	"io"
	"testing"

	"mpcp"
	"mpcp/internal/experiments"
	"mpcp/internal/obs/span"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	var run func() (*experiments.Table, error)
	for _, e := range experiments.All() {
		if e.ID == id {
			run = e.Run
		}
	}
	if run == nil {
		b.Fatalf("no experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := run()
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(t.Rows) == 0 {
			b.Fatalf("%s: empty table", id)
		}
	}
}

// BenchmarkE1RemoteBlockingNoInheritance regenerates Figure 3-1 /
// Example 1: remote blocking growth without priority management.
func BenchmarkE1RemoteBlockingNoInheritance(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkE2InheritanceInsufficient regenerates Figure 3-2 / Example 2:
// priority inheritance alone cannot bound remote blocking.
func BenchmarkE2InheritanceInsufficient(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkE3DhallEffect regenerates the Section 3.2 dynamic-binding
// pathology.
func BenchmarkE3DhallEffect(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkE4PriorityCeilings regenerates Table 4-1.
func BenchmarkE4PriorityCeilings(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkE5GcsPriorities regenerates Table 4-2.
func BenchmarkE5GcsPriorities(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkE6Example4Trace regenerates the Figure 5-1 event trace.
func BenchmarkE6Example4Trace(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkE7SuspensionBound verifies the Theorem 1 / factor 1 bound.
func BenchmarkE7SuspensionBound(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkE8GcsPreemptionInvariant verifies Theorem 2's mechanism.
func BenchmarkE8GcsPreemptionInvariant(b *testing.B) { benchExperiment(b, "E8") }

// BenchmarkE9BlockingBoundTightness compares measured blocking with the
// Section 5.1 bounds.
func BenchmarkE9BlockingBoundTightness(b *testing.B) { benchExperiment(b, "E9") }

// BenchmarkE10ProtocolComparison regenerates the Section 5.2 MPCP vs DPCP
// schedulability sweep.
func BenchmarkE10ProtocolComparison(b *testing.B) { benchExperiment(b, "E10") }

// BenchmarkE11Theorem3Soundness verifies Theorem 3 against simulation.
func BenchmarkE11Theorem3Soundness(b *testing.B) { benchExperiment(b, "E11") }

// BenchmarkE12SpinOverhead regenerates the Section 5.4 busy-wait study.
func BenchmarkE12SpinOverhead(b *testing.B) { benchExperiment(b, "E12") }

// BenchmarkE13NestedGcs regenerates the Section 5.1 nested-gcs remark.
func BenchmarkE13NestedGcs(b *testing.B) { benchExperiment(b, "E13") }

// BenchmarkE14HybridProtocol evaluates the Section 6 mixed
// shared-memory/message-based variation.
func BenchmarkE14HybridProtocol(b *testing.B) { benchExperiment(b, "E14") }

// BenchmarkE15AllocationAffinity evaluates the Section 6 resource-
// affinity allocation advice.
func BenchmarkE15AllocationAffinity(b *testing.B) { benchExperiment(b, "E15") }

// BenchmarkE16AperiodicServer evaluates aperiodic service through a
// polling server (Section 3.1).
func BenchmarkE16AperiodicServer(b *testing.B) { benchExperiment(b, "E16") }

// --- Library micro-benchmarks ------------------------------------------

// BenchmarkSimulateHyperperiodMPCP measures raw simulator throughput: one
// hyperperiod of the default 4-processor random workload under MPCP.
func BenchmarkSimulateHyperperiodMPCP(b *testing.B) {
	sys, err := mpcp.GenerateWorkload(mpcp.DefaultWorkload(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mpcp.Simulate(sys, mpcp.MPCP()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateHyperperiodMPCPReference is the same workload on the
// single-tick reference stepper — the baseline the event-horizon fast
// path is measured against (BENCH_sim.json tracks the pair).
func BenchmarkSimulateHyperperiodMPCPReference(b *testing.B) {
	sys, err := mpcp.GenerateWorkload(mpcp.DefaultWorkload(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mpcp.Simulate(sys, mpcp.MPCP(), mpcp.WithReferenceStepper()); err != nil {
			b.Fatal(err)
		}
	}
}

// sparseWorkload is the regime the fast path exists for: periods twenty
// times the default menu (hyperperiods grow multiplicatively with task
// periods) at 10% per-processor utilization,
// so the vast majority of ticks carry no release, completion or deadline.
// The headline >=5x speedup target is measured here
// (BenchmarkSimulateHyperperiodMPCPSparse vs ...SparseReference).
func sparseWorkload(b *testing.B) *mpcp.System {
	b.Helper()
	cfg := mpcp.DefaultWorkload(1)
	cfg.UtilPerProc = 0.1
	for i := range cfg.Periods {
		cfg.Periods[i] *= 20
	}
	sys, err := mpcp.GenerateWorkload(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

// BenchmarkSimulateHyperperiodMPCPSparse measures the fast path at 10%
// per-processor utilization.
func BenchmarkSimulateHyperperiodMPCPSparse(b *testing.B) {
	sys := sparseWorkload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mpcp.Simulate(sys, mpcp.MPCP()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateHyperperiodMPCPSparseReference is the reference-
// stepper baseline of the sparse workload.
func BenchmarkSimulateHyperperiodMPCPSparseReference(b *testing.B) {
	sys := sparseWorkload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mpcp.Simulate(sys, mpcp.MPCP(), mpcp.WithReferenceStepper()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateHyperperiodMPCPSpans is the tracing-on counterpart
// of BenchmarkSimulateHyperperiodMPCP: the same workload with sim.init
// and sim.run spans streamed to a discarded JSONL sink. BENCH_obs.json
// tracks this pair — the base benchmark doubles as the tracing-off
// baseline, which must stay unchanged because a nil tracer short-
// circuits before any span work (docs/observability.md).
func BenchmarkSimulateHyperperiodMPCPSpans(b *testing.B) {
	sys, err := mpcp.GenerateWorkload(mpcp.DefaultWorkload(1))
	if err != nil {
		b.Fatal(err)
	}
	sink := span.NewStreamSink(io.Discard)
	tr := span.New(sink, "bench")
	root := tr.Start(mpcp.SpanContext{}, "bench.sim", "hyperperiod-mpcp")
	defer root.End()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mpcp.Simulate(sys, mpcp.MPCP(), mpcp.WithSpans(tr, root.Context())); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateHyperperiodDPCP is the DPCP counterpart.
func BenchmarkSimulateHyperperiodDPCP(b *testing.B) {
	sys, err := mpcp.GenerateWorkload(mpcp.DefaultWorkload(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mpcp.Simulate(sys, mpcp.DPCP()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBlockingBounds measures the Section 5.1 analysis.
func BenchmarkBlockingBounds(b *testing.B) {
	sys, err := mpcp.GenerateWorkload(mpcp.DefaultWorkload(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mpcp.BlockingBounds(sys); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyze measures bounds plus both schedulability tests.
func BenchmarkAnalyze(b *testing.B) {
	sys, err := mpcp.GenerateWorkload(mpcp.DefaultWorkload(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mpcp.Analyze(sys, mpcp.WithDeferredPenalty()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerateWorkload measures the seeded generator.
func BenchmarkGenerateWorkload(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := mpcp.GenerateWorkload(mpcp.DefaultWorkload(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE17MinProcessors runs the Section 6 minimum-processor
// allocation search.
func BenchmarkE17MinProcessors(b *testing.B) { benchExperiment(b, "E17") }

// BenchmarkE18SpinVsSuspend quantifies the suspension-vs-busy-wait trade
// at global semaphores.
func BenchmarkE18SpinVsSuspend(b *testing.B) { benchExperiment(b, "E18") }

// BenchmarkE19DedicatedSyncProc quantifies the Section 5.2 extra-
// processor trade (dedicated synchronization vs extra compute).
func BenchmarkE19DedicatedSyncProc(b *testing.B) { benchExperiment(b, "E19") }
