package mpcp

import (
	"mpcp/internal/hybrid"
	"mpcp/internal/server"
	"mpcp/internal/sim"
	"mpcp/internal/task"
)

// HybridOption configures the mixed shared-memory/message-based protocol
// (the variation proposed in the paper's conclusion).
type HybridOption func(*hybrid.Options)

// WithRemoteSem handles global semaphore s message-based (its critical
// sections execute as agents on processor p at the global ceiling); all
// other global semaphores use the shared-memory rules.
func WithRemoteSem(s SemID, p ProcID) HybridOption {
	return func(o *hybrid.Options) {
		if o.Remote == nil {
			o.Remote = make(map[SemID]bool)
			o.Assign = make(map[SemID]ProcID)
		}
		o.Remote[s] = true
		o.Assign[s] = p
	}
}

// Hybrid returns the mixed protocol. With no options it behaves like the
// shared-memory protocol.
func Hybrid(opts ...HybridOption) *hybrid.Protocol {
	var o hybrid.Options
	for _, opt := range opts {
		opt(&o)
	}
	return hybrid.New(o)
}

// Aperiodic service (Section 3.1), re-exported.
type (
	// ServerConfig describes a polling server task.
	ServerConfig = server.Config
	// AperiodicRequest is one aperiodic arrival.
	AperiodicRequest = server.Request
	// AperiodicServed is a request with its computed completion time.
	AperiodicServed = server.Served
)

// PollingServerTask builds the periodic server task for a Builder-less
// system; with the Builder, add the returned task's body via Task and the
// same Period/Budget split.
func PollingServerTask(cfg ServerConfig) (*Task, error) { return server.Task(cfg) }

// ServePolling replays a recorded trace's server execution against an
// aperiodic request stream under strict polling semantics and returns
// per-request completions.
func ServePolling(log *Trace, serverID TaskID, reqs []AperiodicRequest) ([]AperiodicServed, error) {
	return server.ServePolling(log, serverID, reqs)
}

// PollingResponseBound returns the isolated-request worst-case response
// bound of a polling server.
func PollingResponseBound(period, budget, work int) int {
	return server.PollingResponseBound(period, budget, work)
}

// GenerateAperiodicStream builds a deterministic pseudo-Poisson request
// stream.
func GenerateAperiodicStream(seed int64, horizon int, meanInterarrival float64, workMin, workMax int) []AperiodicRequest {
	return server.GenerateStream(seed, horizon, meanInterarrival, workMin, workMax)
}

// AddTask inserts a pre-built task (e.g. from PollingServerTask) into a
// Builder-produced system; call Revalidate afterwards.
func AddTask(sys *System, t *Task) { sys.AddTask(t) }

// Compile-time checks that the extension protocols satisfy the simulator
// interface.
var (
	_ sim.Protocol = (*hybrid.Protocol)(nil)
	_              = task.ID(0)
)
