package mpcp

import (
	"testing"
)

// TestDeprecatedAliases pins the alias table: every spelling that ever
// worked on a command line or came back from a trace's Protocol field
// must keep resolving to the same canonical protocol. Removing or
// re-pointing an alias is a breaking change and must fail here first.
func TestDeprecatedAliases(t *testing.T) {
	pinned := map[string]string{
		"mpcp+spin":        "mpcp-spin",
		"mpcp+fifo":        "mpcp-fifo",
		"mpcp+ceilprio":    "mpcp-ceil",
		"fmlp+":            "fmlp",
		"none(fifo)":       "none",
		"none(prio-queue)": "none-prio",
	}
	byName := make(map[string]ProtocolInfo)
	for _, info := range Protocols() {
		byName[info.Name] = info
	}
	for alias, canonical := range pinned {
		info, ok := byName[canonical]
		if !ok {
			t.Errorf("canonical protocol %q vanished from Protocols()", canonical)
			continue
		}
		found := false
		for _, a := range info.Aliases {
			if a == alias {
				found = true
			}
		}
		if !found {
			t.Errorf("protocol %q lost its alias %q (aliases: %v)", canonical, alias, info.Aliases)
		}
		if _, err := NewProtocol(alias, nil); err != nil {
			t.Errorf("NewProtocol(%q): %v", alias, err)
		}
	}
}

// TestProtocolNamesRoundTrip: every visible protocol's simulator
// Name() resolves back through NewProtocol, so a protocol name read
// from a trace can always be re-instantiated.
func TestProtocolNamesRoundTrip(t *testing.T) {
	sys := spinTestSystem(t)
	for _, info := range Protocols() {
		p, err := NewProtocol(info.Name, sys)
		if err != nil {
			t.Fatalf("NewProtocol(%q): %v", info.Name, err)
		}
		if _, err := NewProtocol(p.Name(), sys); err != nil {
			t.Errorf("protocol %q: simulator name %q does not round-trip: %v", info.Name, p.Name(), err)
		}
	}
}

// TestSpinProtocolFacade: the MSRP and FMLP constructors build working
// protocols that simulate a contended two-processor workload and keep
// every deadline the analysis admits.
func TestSpinProtocolFacade(t *testing.T) {
	sys := spinTestSystem(t)
	for _, tc := range []struct {
		name  string
		proto Protocol
	}{
		{"msrp", MSRP()},
		{"fmlp", FMLP()},
		{"fmlp-short-cutoff", FMLP(WithShortMax(1))},
	} {
		res, err := Simulate(sys, tc.proto)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Deadlock {
			t.Errorf("%s: deadlock at t=%d", tc.name, res.DeadlockAt)
		}
	}
}

func spinTestSystem(t *testing.T) *System {
	t.Helper()
	b := NewBuilder(2)
	s := b.Semaphore("shared")
	b.Task("hi0", TaskSpec{Proc: 0, Period: 40},
		Compute(2), Lock(s), Compute(3), Unlock(s), Compute(2))
	b.Task("hi1", TaskSpec{Proc: 1, Period: 50},
		Compute(2), Lock(s), Compute(4), Unlock(s), Compute(1))
	b.Task("lo0", TaskSpec{Proc: 0, Period: 100},
		Compute(5), Lock(s), Compute(2), Unlock(s), Compute(5))
	sys, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return sys
}
