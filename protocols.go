package mpcp

import (
	"mpcp/internal/core"
	"mpcp/internal/dpcp"
	"mpcp/internal/fmlp"
	"mpcp/internal/msrp"
	"mpcp/internal/pcp"
	"mpcp/internal/proto"
	"mpcp/internal/registry"
	"mpcp/internal/sim"
)

// Protocol is a pluggable synchronization discipline for Simulate. The
// constructors below cover the paper's protocol, its baselines and its
// ablation variants.
type Protocol = sim.Protocol

// MPCPOption configures the shared-memory protocol.
type MPCPOption func(*core.Options)

// WithSpin makes jobs busy-wait at busy global semaphores instead of
// suspending (an ablation discussed in Section 5: "both approaches can
// cause processor cycles to be lost").
func WithSpin() MPCPOption {
	return func(o *core.Options) { o.Wait = core.Spin }
}

// WithFIFOQueues orders global semaphore queues FCFS instead of by
// priority, ablating the paper's secondary goal.
func WithFIFOQueues() MPCPOption {
	return func(o *core.Options) { o.FIFOQueues = true }
}

// WithGcsAtCeiling runs each gcs at the full global priority ceiling of
// its semaphore (as [8] suggests) instead of the paper's P_G + P_h.
func WithGcsAtCeiling() MPCPOption {
	return func(o *core.Options) { o.GcsAtCeiling = true }
}

// WithNestedGlobal permits nested global critical sections (the caller
// guarantees a deadlock-free partial order).
func WithNestedGlobal() MPCPOption {
	return func(o *core.Options) { o.AllowNestedGlobal = true }
}

// MPCP returns the paper's shared-memory synchronization protocol.
func MPCP(opts ...MPCPOption) *core.Protocol {
	var o core.Options
	for _, opt := range opts {
		opt(&o)
	}
	return core.New(o)
}

// DPCPOption configures the message-based baseline.
type DPCPOption func(*dpcp.Options)

// WithSyncProc assigns global semaphore s to synchronization processor p.
func WithSyncProc(s SemID, p ProcID) DPCPOption {
	return func(o *dpcp.Options) {
		if o.Assign == nil {
			o.Assign = make(map[SemID]ProcID)
		}
		o.Assign[s] = p
	}
}

// DPCP returns the message-based multiprocessor protocol of [8]: global
// critical sections execute on designated synchronization processors at
// the global priority ceilings of their semaphores.
func DPCP(opts ...DPCPOption) *dpcp.Protocol {
	var o dpcp.Options
	for _, opt := range opts {
		opt(&o)
	}
	return dpcp.New(o)
}

// PCP returns the uniprocessor priority ceiling protocol; every semaphore
// must be local. The shared-memory protocol reduces to it on one
// processor.
func PCP() *pcp.Protocol { return pcp.New() }

// ImmediatePCP returns the immediate-ceiling uniprocessor variant the
// paper's Section 4.4 cites as "a good approximation of the priority
// ceiling protocol [9]": a job jumps to the semaphore's ceiling the
// moment it locks, so requests never block and worst-case blocking
// matches classic PCP.
func ImmediatePCP() *pcp.Immediate { return pcp.NewImmediate() }

// NoProtocol returns raw binary semaphores with FIFO queues and no
// priority management — the baseline that exhibits unbounded priority
// inversion (Example 1).
func NoProtocol() *proto.None { return proto.NewNone(proto.FIFOOrder) }

// NoProtocolPrioQueues is NoProtocol with priority-ordered wakeups.
func NoProtocolPrioQueues() *proto.None { return proto.NewNone(proto.PriorityOrder) }

// PriorityInheritance returns naive transitive priority inheritance
// applied across processors — bounded on uniprocessors, insufficient on
// multiprocessors (Example 2).
func PriorityInheritance() *proto.Inherit { return proto.NewInherit() }

// MSRP returns the multiprocessor stack resource policy (Gai, Lipari
// and Di Natale, RTSS 2001): jobs busy-wait non-preemptively in FIFO
// order at busy global semaphores, so a global critical section is
// never preempted and at most one request per processor is ever
// queued.
func MSRP() *msrp.Protocol { return msrp.New() }

// FMLPOption configures the FMLP+ protocol.
type FMLPOption func(*fmlp.Options)

// WithShortMax sets the short/long cutoff in ticks: semaphores whose
// longest critical section is at most n ticks are short (jobs spin),
// the rest are long (jobs suspend and are priority-boosted on grant).
// Zero keeps fmlp.DefaultShortMax.
func WithShortMax(n int) FMLPOption {
	return func(o *fmlp.Options) { o.ShortMax = n }
}

// FMLP returns the FIFO multiprocessor locking protocol in its FMLP+
// form (Block et al., RTCSA 2007; Brandenburg's suspension-aware
// refinement): short resources spin, long resources suspend, all
// queues are FIFO.
func FMLP(opts ...FMLPOption) *fmlp.Protocol {
	var o fmlp.Options
	for _, opt := range opts {
		opt(&o)
	}
	return fmlp.New(o)
}

// ProtocolInfo describes one registered protocol: its canonical
// command-line name, accepted aliases, a one-line summary and its
// capability record. See docs/protocols.md for the capability table.
type ProtocolInfo struct {
	Name    string
	Aliases []string
	Summary string
	Caps    ProtocolCaps
}

// ProtocolCaps re-exports the registry capability record.
type ProtocolCaps = registry.Caps

// Protocols lists every registered protocol (including hidden
// variants) in registration order. NewProtocol accepts any listed name
// or alias.
func Protocols() []ProtocolInfo {
	ds := registry.All()
	out := make([]ProtocolInfo, 0, len(ds))
	for _, d := range ds {
		out = append(out, ProtocolInfo{
			Name:    d.Name,
			Aliases: append([]string(nil), d.Aliases...),
			Summary: d.Summary,
			Caps:    d.Caps,
		})
	}
	return out
}

// NewProtocol builds a protocol from its registry name or alias, as
// the command-line tools do; sys (optional, may be nil) lets
// workload-dependent defaults apply, e.g. the hybrid protocol's
// message-based semaphore split.
func NewProtocol(name string, sys *System) (Protocol, error) {
	return registry.New(name, registry.Opts{Sys: sys})
}
