package mpcp

import (
	"mpcp/internal/core"
	"mpcp/internal/dpcp"
	"mpcp/internal/pcp"
	"mpcp/internal/proto"
	"mpcp/internal/sim"
)

// Protocol is a pluggable synchronization discipline for Simulate. The
// constructors below cover the paper's protocol, its baselines and its
// ablation variants.
type Protocol = sim.Protocol

// MPCPOption configures the shared-memory protocol.
type MPCPOption func(*core.Options)

// WithSpin makes jobs busy-wait at busy global semaphores instead of
// suspending (an ablation discussed in Section 5: "both approaches can
// cause processor cycles to be lost").
func WithSpin() MPCPOption {
	return func(o *core.Options) { o.Wait = core.Spin }
}

// WithFIFOQueues orders global semaphore queues FCFS instead of by
// priority, ablating the paper's secondary goal.
func WithFIFOQueues() MPCPOption {
	return func(o *core.Options) { o.FIFOQueues = true }
}

// WithGcsAtCeiling runs each gcs at the full global priority ceiling of
// its semaphore (as [8] suggests) instead of the paper's P_G + P_h.
func WithGcsAtCeiling() MPCPOption {
	return func(o *core.Options) { o.GcsAtCeiling = true }
}

// WithNestedGlobal permits nested global critical sections (the caller
// guarantees a deadlock-free partial order).
func WithNestedGlobal() MPCPOption {
	return func(o *core.Options) { o.AllowNestedGlobal = true }
}

// MPCP returns the paper's shared-memory synchronization protocol.
func MPCP(opts ...MPCPOption) *core.Protocol {
	var o core.Options
	for _, opt := range opts {
		opt(&o)
	}
	return core.New(o)
}

// DPCPOption configures the message-based baseline.
type DPCPOption func(*dpcp.Options)

// WithSyncProc assigns global semaphore s to synchronization processor p.
func WithSyncProc(s SemID, p ProcID) DPCPOption {
	return func(o *dpcp.Options) {
		if o.Assign == nil {
			o.Assign = make(map[SemID]ProcID)
		}
		o.Assign[s] = p
	}
}

// DPCP returns the message-based multiprocessor protocol of [8]: global
// critical sections execute on designated synchronization processors at
// the global priority ceilings of their semaphores.
func DPCP(opts ...DPCPOption) *dpcp.Protocol {
	var o dpcp.Options
	for _, opt := range opts {
		opt(&o)
	}
	return dpcp.New(o)
}

// PCP returns the uniprocessor priority ceiling protocol; every semaphore
// must be local. The shared-memory protocol reduces to it on one
// processor.
func PCP() *pcp.Protocol { return pcp.New() }

// ImmediatePCP returns the immediate-ceiling uniprocessor variant the
// paper's Section 4.4 cites as "a good approximation of the priority
// ceiling protocol [9]": a job jumps to the semaphore's ceiling the
// moment it locks, so requests never block and worst-case blocking
// matches classic PCP.
func ImmediatePCP() *pcp.Immediate { return pcp.NewImmediate() }

// NoProtocol returns raw binary semaphores with FIFO queues and no
// priority management — the baseline that exhibits unbounded priority
// inversion (Example 1).
func NoProtocol() *proto.None { return proto.NewNone(proto.FIFOOrder) }

// NoProtocolPrioQueues is NoProtocol with priority-ordered wakeups.
func NoProtocolPrioQueues() *proto.None { return proto.NewNone(proto.PriorityOrder) }

// PriorityInheritance returns naive transitive priority inheritance
// applied across processors — bounded on uniprocessors, insufficient on
// multiprocessors (Example 2).
func PriorityInheritance() *proto.Inherit { return proto.NewInherit() }
